// Typed RPC over operation descriptors (rpc/op.hpp): server-side dispatch
// glue, the client-side call/call_async/TypedBatch stubs, and the uniform
// std_* operation suite every server registers.
//
// Server side.  Service::on(op, store, handler) centralizes the §2.3
// validate hot path: the dispatcher looks the header capability up in the
// service's object store and checks the op's DECLARED rights before any
// handler code runs (rights precede parsing -- a request is not even
// decoded for a caller whose capability does not cover the operation).
// Handlers receive the decoded request body and, for single-object ops,
// the exclusive store accessor; they return Result values, which the glue
// maps to reply statuses.  Decode failures answer invalid_argument with an
// op-named diagnostic string in the reply data.
//
// Client side.  call<Op> performs one blocking transaction and hands back
// the decoded typed reply; call_async<Op> returns a TypedFuture so one
// thread can pipeline; TypedBatch::add<Op> packs typed sub-requests into
// the PR-2 batch envelope and decodes per-entry typed results.  The wire
// format is unchanged, so typed clients interoperate with untyped peers
// (and vice versa) frame for frame.
//
// std_* suite (§2.3; Amoeba's standard operations).  Declared once here
// and registered on every service via register_std_ops():
//
//   std_restrict  0xF0  fabricate a sub-capability with fewer rights
//   std_revoke    0xF1  rotate the object's random number (admin right)
//   std_info      0xF2  human-readable object description
//   std_touch     0xF3  liveness ping: validates the capability, nothing
//                       else (the hook garbage collection would use)
//   std_destroy   0xF4  destroy the object (destroy right); servers with
//                       destruction side effects install a hook
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <stop_token>
#include <string>
#include <type_traits>
#include <utility>

#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/op.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"

namespace amoeba::rpc {

/// What a typed call resolves to: Result<Reply>, or Result<void> for
/// payload-less replies.
template <typename OpT>
using Outcome =
    std::conditional_t<std::is_same_v<typename OpT::Reply, Empty>,
                       Result<void>, Result<typename OpT::Reply>>;

/// The decoded request context handed to typed handlers.
template <typename OpT>
struct Call {
  const net::Delivery& delivery;
  const OpT& op;
  core::Capability capability;  // unpacked header capability (null for
                                // factory ops); already validated against
                                // op.required when the handler runs
  typename OpT::Request body;   // decoded request

  [[nodiscard]] MachineId src() const { return delivery.src; }
};

namespace detail {

/// invalid_argument reply whose data names the op that failed to decode
/// (defined in typed.cpp; uses to_string(ErrorCode) for the diagnostic).
[[nodiscard]] net::Message decode_error_reply(const net::Delivery& request,
                                              const char* op_name);

template <typename OpT>
[[nodiscard]] std::optional<typename OpT::Request> decode_request(
    const net::Delivery& request) {
  return OpT::Request::Wire::decode(view_of(request.message));
}

template <typename OpT>
[[nodiscard]] net::Message encode_reply(const net::Delivery& request,
                                        const Outcome<OpT>& outcome) {
  if (!outcome.ok()) {
    return net::make_reply(request.message, outcome.error());
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  if constexpr (!std::is_same_v<typename OpT::Reply, Empty>) {
    WireImage image;
    OpT::Reply::Wire::encode(outcome.value(), image);
    reply.header.capability = image.capability;
    reply.header.params = image.params;
    reply.data = std::move(image.data);
  }
  return reply;
}

template <typename OpT>
[[nodiscard]] net::Message build_request(Port dest, const OpT& op,
                                         const core::Capability* cap,
                                         const typename OpT::Request& body) {
  WireImage image;
  OpT::Request::Wire::encode(body, image);
  net::Message request;
  request.header.dest = dest;
  request.header.opcode = op.opcode;
  request.header.capability = image.capability;
  request.header.params = image.params;
  request.data = std::move(image.data);
  if (cap != nullptr) {
    request.header.capability = core::pack(*cap);
  }
  return request;
}

template <typename OpT>
[[nodiscard]] Outcome<OpT> decode_reply(Result<net::Delivery>&& delivery) {
  if (!delivery.ok()) {
    return delivery.error();
  }
  const net::Message& msg = delivery.value().message;
  if (msg.header.status != ErrorCode::ok) {
    return msg.header.status;
  }
  if constexpr (std::is_same_v<typename OpT::Reply, Empty>) {
    return Result<void>{};
  } else {
    auto body = OpT::Reply::Wire::decode(view_of(msg));
    if (!body.has_value()) {
      return ErrorCode::internal;  // server broke the declared reply shape
    }
    return std::move(*body);
  }
}

}  // namespace detail

// ---------------------------------------------------------------------
// Server-side registration (declared in rpc/server.hpp).

template <typename OpT, typename F>
  requires requires { typename OpT::Request; typename OpT::Reply; }
void Service::on(const OpT& op, F handler) {
  if (op.object) {
    throw UsageError(std::string("Service::on: ") + op.name +
                     " addresses an object; register it with its store");
  }
  on(op.opcode,
     [op, handler = std::move(handler)](
         const net::Delivery& request) -> net::Message {
       auto body = detail::decode_request<OpT>(request);
       if (!body.has_value()) {
         return detail::decode_error_reply(request, op.name);
       }
       Call<OpT> call{request, op, {}, std::move(*body)};
       return detail::encode_reply<OpT>(request, handler(call));
     });
  note_op({op.opcode, op.name, op.required, op.data_rights, op.object});
}

template <typename OpT, typename Store, typename F>
  requires requires { typename OpT::Request; typename OpT::Reply; }
void Service::on(const OpT& op, Store& store, F handler) {
  if (!op.object) {
    throw UsageError(std::string("Service::on: factory op ") + op.name +
                     " takes no capability; register it without a store");
  }
  on(op.opcode,
     [&store, op, handler = std::move(handler)](
         const net::Delivery& request) -> net::Message {
       Call<OpT> call{request, op,
                      core::unpack(request.message.header.capability), {}};
       constexpr bool kTakesAccessor =
           std::is_invocable_v<const F&, Call<OpT>&, typename Store::Opened&>;
       static_assert(kTakesAccessor ||
                         std::is_invocable_v<const F&, Call<OpT>&>,
                     "typed handlers take (Call&, Store::Opened&) or (Call&)");
       if constexpr (kTakesAccessor) {
         // The §2.3 validate hot path, centralized: one open() with the
         // op's declared rights, before the request body is even parsed.
         // open()'s read-only prefix probes the slot seqlock + validated-
         // capability cache first, so a repeat capability reaches the
         // shard mutex already proven and skips the crypto re-validation.
         auto opened = store.open(call.capability, op.required);
         if (!opened.ok()) {
           return net::make_reply(request.message, opened.error());
         }
         auto body = detail::decode_request<OpT>(request);
         if (!body.has_value()) {
           return detail::decode_error_reply(request, op.name);
         }
         call.body = std::move(*body);
         return detail::encode_reply<OpT>(request,
                                          handler(call, opened.value()));
       } else {
         // (Call&)-form op: rights are still checked up front, and on a
         // repeat capability check() completes with atomic loads only --
         // zero mutex acquisitions -- via the seqlock'd validated-
         // capability cache.  A handler that touches payload state (open2,
         // journaling) then takes the shard locks it needs itself; a
         // handler that touches nothing (kStdTouch) stays lock-free end
         // to end.
         auto checked = store.check(call.capability, op.required);
         if (!checked.ok()) {
           return net::make_reply(request.message, checked.error());
         }
         auto body = detail::decode_request<OpT>(request);
         if (!body.has_value()) {
           return detail::decode_error_reply(request, op.name);
         }
         call.body = std::move(*body);
         return detail::encode_reply<OpT>(request, handler(call));
       }
     });
  note_op({op.opcode, op.name, op.required, op.data_rights, op.object});
}

// ---------------------------------------------------------------------
// Client side.

/// Builds the wire message of one typed request without sending it, for
/// callers that drive Transport by hand (protocol layers needing the raw
/// delivery, benches pipelining raw futures).
template <typename OpT>
[[nodiscard]] net::Message make_request(Port dest, const OpT& op,
                                        const typename OpT::Request& body = {}) {
  return detail::build_request(dest, op, nullptr, body);
}
template <typename OpT>
[[nodiscard]] net::Message make_request(Port dest, const OpT& op,
                                        const core::Capability& cap,
                                        const typename OpT::Request& body = {}) {
  return detail::build_request(dest, op, &cap, body);
}

/// One blocking typed transaction against the object `cap` names.
template <typename OpT>
[[nodiscard]] Outcome<OpT> call(Transport& transport, Port dest,
                                const OpT& op, const core::Capability& cap,
                                const typename OpT::Request& body = {}) {
  return detail::decode_reply<OpT>(
      transport.trans(detail::build_request(dest, op, &cap, body)));
}

/// Capability-less form (factory ops).
template <typename OpT>
[[nodiscard]] Outcome<OpT> call(Transport& transport, Port dest,
                                const OpT& op,
                                const typename OpT::Request& body = {}) {
  return detail::decode_reply<OpT>(
      transport.trans(detail::build_request(dest, op, nullptr, body)));
}

/// Completion handle of one typed in-flight transaction; get() decodes.
template <typename OpT>
class [[nodiscard]] TypedFuture {
 public:
  TypedFuture() = default;
  explicit TypedFuture(Future raw) : raw_(std::move(raw)) {}

  [[nodiscard]] bool valid() const { return raw_.valid(); }
  [[nodiscard]] bool ready() const { return raw_.ready(); }
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const {
    return raw_.wait_for(timeout);
  }
  /// One-shot, like Future::get.
  [[nodiscard]] Outcome<OpT> get(std::stop_token stop = {}) {
    return detail::decode_reply<OpT>(raw_.get(std::move(stop)));
  }

 private:
  Future raw_;
};

/// Pipelining: issue without waiting; any number may be in flight.
template <typename OpT>
[[nodiscard]] TypedFuture<OpT> call_async(
    Transport& transport, Port dest, const OpT& op,
    const core::Capability& cap, const typename OpT::Request& body = {}) {
  return TypedFuture<OpT>(
      transport.trans_async(detail::build_request(dest, op, &cap, body)));
}

template <typename OpT>
[[nodiscard]] TypedFuture<OpT> call_async(
    Transport& transport, Port dest, const OpT& op,
    const typename OpT::Request& body = {}) {
  return TypedFuture<OpT>(
      transport.trans_async(detail::build_request(dest, op, nullptr, body)));
}

// ---------------------------------------------------------------------
// TypedBatch: typed sub-requests riding the PR-2 batch envelope.

/// Queue typed requests for one service, send them as a single batch
/// frame, decode per-entry typed replies:
///
///   rpc::TypedBatch batch(transport, bank_port);
///   auto first = batch.add(bank_ops::kTransfer, from, {cur, amount, to});
///   ...
///   auto replies = batch.run();           // one round trip for all
///   Result<void> outcome = replies.value().get(first);
class TypedBatch {
 public:
  /// The add() position of one entry, remembering its op type so get()
  /// decodes the right reply shape.
  template <typename OpT>
  struct Entry {
    std::size_t index = 0;
  };

  TypedBatch(Transport& transport, Port dest) : batch_(transport, dest) {}

  template <typename OpT>
  Entry<OpT> add(const OpT& op, const core::Capability& cap,
                 const typename OpT::Request& body = {}) {
    return add_impl<OpT>(op, &cap, body);
  }
  template <typename OpT>
  Entry<OpT> add(const OpT& op, const typename OpT::Request& body = {}) {
    return add_impl<OpT>(op, nullptr, body);
  }

  [[nodiscard]] std::size_t size() const { return batch_.size(); }
  [[nodiscard]] bool empty() const { return batch_.empty(); }
  void clear() { batch_.clear(); }

  /// Per-entry typed results of one completed batch round trip.
  class Replies {
   public:
    template <typename OpT>
    [[nodiscard]] Outcome<OpT> get(Entry<OpT> entry) const {
      if (entry.index >= entries_.size()) {
        return ErrorCode::internal;  // reply count below the queued count
      }
      const BatchReply& reply = entries_[entry.index];
      if (reply.status != ErrorCode::ok) {
        return reply.status;
      }
      if constexpr (std::is_same_v<typename OpT::Reply, Empty>) {
        return Result<void>{};
      } else {
        auto body = OpT::Reply::Wire::decode(
            WireView{reply.capability, reply.params, reply.data});
        if (!body.has_value()) {
          return ErrorCode::internal;
        }
        return std::move(*body);
      }
    }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

   private:
    friend class TypedBatch;
    std::vector<BatchReply> entries_;
  };

  /// One round trip for every queued entry; consumes the queue like
  /// rpc::Batch::run, and a success carries one reply per queued entry.
  [[nodiscard]] Result<Replies> run();
  [[nodiscard]] Result<Replies> run(std::chrono::milliseconds timeout);

  /// Pipelining: send without waiting, decode later with parse_reply().
  [[nodiscard]] Future run_async() { return batch_.run_async(); }
  [[nodiscard]] Future run_async(std::chrono::milliseconds timeout) {
    return batch_.run_async(timeout);
  }
  [[nodiscard]] static Result<Replies> parse_reply(
      Result<net::Delivery> delivery);

 private:
  template <typename OpT>
  Entry<OpT> add_impl(const OpT& op, const core::Capability* cap,
                      const typename OpT::Request& body) {
    WireImage image;
    OpT::Request::Wire::encode(body, image);
    if (cap != nullptr) {
      image.capability = core::pack(*cap);
    }
    return Entry<OpT>{batch_.add(op.opcode, &image.capability,
                                 std::move(image.data), image.params)};
  }

  Batch batch_;
};

// ---------------------------------------------------------------------
// The uniform standard-operations suite.

struct StdRestrictRequest {
  Rights mask;
  using Wire = Layout<StdRestrictRequest, Param<0, &StdRestrictRequest::mask>>;
};

struct StdInfoRequest {
  /// Nonzero: append the service's per-operation latency/error counters
  /// (Service::op_metrics()) to the description.  Old clients leave the
  /// param zeroed, so the wire format is backward compatible.
  std::uint64_t detail = 0;
  using Wire = Layout<StdInfoRequest, Param<0, &StdInfoRequest::detail>>;
};

struct StdInfoReply {
  std::string description;
  using Wire = Layout<StdInfoReply, Data<&StdInfoReply::description>>;
};

/// Fabricate a sub-capability with fewer rights (the paper's owner
/// operation; any valid capability may be narrowed -- you can only lose
/// rights this way).  Same opcode and wire shape as the old kOpRestrict.
inline constexpr Op<StdRestrictRequest, CapabilityReply> kStdRestrict{
    0xF0, "std.restrict", Rights::none()};

/// Rotate the object's random number, invalidating every outstanding
/// capability ("obviously this operation must be protected with a bit in
/// the RIGHTS field").  Same opcode and wire shape as the old kOpRevoke.
inline constexpr Op<Empty, CapabilityReply> kStdRevoke{
    0xF1, "std.revoke", core::rights::kAdmin};

/// Human-readable description of the object behind a capability; with the
/// detail flag, also the service's per-op latency/error counters.
inline constexpr Op<StdInfoRequest, StdInfoReply> kStdInfo{0xF2, "std.info",
                                                           Rights::none()};

/// Validates the capability and does nothing else -- the liveness ping a
/// garbage collector would use to keep an object from aging out.
inline constexpr Op<Empty, Empty> kStdTouch{0xF3, "std.touch",
                                            Rights::none()};

/// Destroys the object through the uniform opcode.
inline constexpr Op<Empty, Empty> kStdDestroy{0xF4, "std.destroy",
                                              core::rights::kDestroy};

/// Per-server customization of the generic std_* handlers.
template <typename Store>
struct StdOpsHooks {
  /// Replaces the default destroy (plain store.destroy) for servers whose
  /// destruction has side effects -- freeing disk blocks, refunding
  /// storage charges, releasing page trees, returning budget.  Receives
  /// the accessor already opened with the destroy right and consumes it.
  std::function<Result<void>(typename Store::Opened&&)> destroy{};
  /// Appended to std_info's description (object-kind specifics).
  std::function<std::string(const typename Store::Opened&)> describe{};
};

/// Registers the whole std_* suite against `store` on `service`'s
/// dispatch table (generalizing the old register_owner_ops).  The store
/// and service must outlive each other as usual (both members of the same
/// server object).
template <typename Store>
void register_std_ops(Service& service, Store& store,
                      StdOpsHooks<Store> hooks = {}) {
  service.on(kStdRestrict, store,
             [&store](const auto& call) -> Result<CapabilityReply> {
               auto narrowed =
                   store.restrict(call.capability, call.body.mask);
               if (!narrowed.ok()) {
                 return narrowed.error();
               }
               return CapabilityReply{narrowed.value()};
             });
  service.on(kStdRevoke, store,
             [&store](const auto& call) -> Result<CapabilityReply> {
               auto fresh = store.revoke(call.capability);
               if (!fresh.ok()) {
                 return fresh.error();
               }
               return CapabilityReply{fresh.value()};
             });
  service.on(kStdInfo, store,
             [&service, describe = std::move(hooks.describe)](
                 const auto& call, auto& opened) -> Result<StdInfoReply> {
               std::string text = service.name() + "/" +
                                  to_string(opened.object) + " " +
                                  to_string(opened.rights);
               if (describe) {
                 text += " " + describe(opened);
               }
               if (call.body.detail != 0) {
                 // Deployment line: replication role, peers and shipping
                 // lag (docs/PROTOCOL.md §9.5), or "role=standalone".
                 text += "\n" + service.info_detail();
                 // Per-op latency/error counters keyed by OpInfo::name
                 // (the ROADMAP metrics follow-up from PR 3).
                 for (const auto& op : service.op_metrics()) {
                   text += "\n" + op.name + " calls=" +
                           std::to_string(op.calls) + " errors=" +
                           std::to_string(op.errors) + " total_us=" +
                           std::to_string(op.total_us) + " max_us=" +
                           std::to_string(op.max_us);
                 }
               }
               return StdInfoReply{std::move(text)};
             });
  // (Call&) form, not the accessor form: touch needs no payload access,
  // so a repeat touch rides check()'s lock-free validate -- atomic loads
  // only, no shard mutex -- which is exactly what the liveness-probe
  // traffic pattern (many touches per mutation) wants.
  service.on(kStdTouch, store,
             [](const auto&) -> Result<void> { return {}; });
  service.on(kStdDestroy, store,
             [&store, destroy = std::move(hooks.destroy)](
                 const auto&, auto& opened) -> Result<void> {
               if (destroy) {
                 return destroy(std::move(opened));
               }
               return store.destroy(std::move(opened));
             });
}

// Client-side std_* helpers, addressed through the capability's own
// SERVER field like every owner operation.

[[nodiscard]] inline Result<core::Capability> std_restrict(
    Transport& transport, const core::Capability& cap, Rights mask) {
  auto reply = call(transport, cap.server_port, kStdRestrict, cap, {mask});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

[[nodiscard]] inline Result<core::Capability> std_revoke(
    Transport& transport, const core::Capability& cap) {
  auto reply = call(transport, cap.server_port, kStdRevoke, cap);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

[[nodiscard]] inline Result<std::string> std_info(Transport& transport,
                                                  const core::Capability& cap,
                                                  bool detail = false) {
  auto reply = call(transport, cap.server_port, kStdInfo, cap,
                    {detail ? std::uint64_t{1} : std::uint64_t{0}});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().description);
}

[[nodiscard]] inline Result<void> std_touch(Transport& transport,
                                            const core::Capability& cap) {
  return call(transport, cap.server_port, kStdTouch, cap);
}

[[nodiscard]] inline Result<void> std_destroy(Transport& transport,
                                              const core::Capability& cap) {
  return call(transport, cap.server_port, kStdDestroy, cap);
}

}  // namespace amoeba::rpc
