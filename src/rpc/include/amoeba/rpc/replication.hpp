// Replication over the RPC layer (docs/PROTOCOL.md §9): the typed rep.*
// operations a backup speaks, the ReplicaServer that applies them to its
// local volume, the Transport-backed ReplicationLink the primary ships
// through, and the replicate_to() wiring that turns any local backend
// into a replication primary.
//
// The division of labor with src/storage/replication: storage owns WHAT
// ships (cycle frames, LSN floors, ack modes, the shipping queues) and is
// transport-blind; this header owns HOW it travels -- each shipment is one
// at-most-once transaction against the backup's volume capability, so the
// reply cache suppresses retransmitted shipments exactly as it suppresses
// any other duplicated transaction, and the replica's LSN floor suppresses
// what the cache has already evicted.
//
// Failover (§9.4): a backup's volume is byte-equivalent to the primary's,
// secrets included.  rep_promote() seals the backup against further
// shipments (a deposed primary is fenced with `immutable`) and returns its
// applied floor; constructing ordinary servers over the promoted volume
// re-mints nothing -- every capability minted before the crash validates,
// and restored reply floors still suppress pre-crash duplicates.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/op.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/storage/replication/replica.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace amoeba::rpc {

namespace rep_ops {

/// Every replication op answers with the backup's durably-applied floor
/// (a duplicate shipment acks with the unchanged floor).
struct AckReply {
  std::uint64_t applied = 0;
  using Wire = Layout<AckReply, Param<0, &AckReply::applied>>;
};

/// One encoded cycle frame (storage/replication/wire.hpp), as the bulk
/// data field.
struct AppendGroupRequest {
  Buffer frame;
  using Wire =
      Layout<AppendGroupRequest, RawData<&AppendGroupRequest::frame>>;
};

/// One shard snapshot image; the backup adopts `rep_lsn` as its floor.
struct InstallSnapshotRequest {
  std::uint64_t rep_lsn = 0;
  std::uint64_t shard = 0;
  Buffer bytes;
  using Wire = Layout<InstallSnapshotRequest,
                      Param<0, &InstallSnapshotRequest::rep_lsn>,
                      Param<1, &InstallSnapshotRequest::shard>,
                      RawData<&InstallSnapshotRequest::bytes>>;
};

/// No-op probe carrying the primary's highest shipped LSN (the backup
/// learns its own lag; the primary learns the applied floor).
struct HeartbeatRequest {
  std::uint64_t shipped = 0;
  using Wire =
      Layout<HeartbeatRequest, Param<0, &HeartbeatRequest::shipped>>;
};

inline constexpr Op<AppendGroupRequest, AckReply> kAppendGroup{
    0x0701, "rep.append_group", core::rights::kWrite};
inline constexpr Op<InstallSnapshotRequest, AckReply> kInstallSnapshot{
    0x0702, "rep.install_snapshot", core::rights::kWrite};
inline constexpr Op<HeartbeatRequest, AckReply> kHeartbeat{
    0x0703, "rep.heartbeat", Rights::none()};
/// Failover: seal this backup against further shipments and return its
/// final floor.  Owner operation -- "obviously this operation must be
/// protected with a bit in the RIGHTS field".
inline constexpr Op<Empty, AckReply> kPromote{0x0704, "rep.promote",
                                              core::rights::kAdmin};

}  // namespace rep_ops

/// The backup machine's replication service: one control-plane object
/// (the volume) whose capability gates all rep.* traffic, applied to the
/// local backend through a storage::ReplicaApplier.  After a primary
/// crash, promote() (or the rep_promote RPC) seals the applier; the
/// caller then constructs ordinary servers over backend() -- with the
/// SAME get-port and protection scheme the primary used -- and every
/// pre-crash capability validates against them.
class ReplicaServer : public Service {
 public:
  ReplicaServer(net::Machine& machine, Port get_port,
                std::shared_ptr<const core::ProtectionScheme> scheme,
                std::uint64_t seed, std::shared_ptr<storage::Backend> local);

  /// The capability the primary ships with (hand it to replicate_to()).
  [[nodiscard]] const core::Capability& volume_capability() const {
    return volume_;
  }
  [[nodiscard]] storage::ReplicaApplier& applier() { return applier_; }
  /// The replicated volume itself (what failover builds servers over).
  [[nodiscard]] const std::shared_ptr<storage::Backend>& backend() const {
    return applier_.local();
  }

 private:
  /// Control-plane marker: rep.* ops guard the whole volume, so the store
  /// holds exactly one object and the payload carries nothing.
  struct Volume {};
  using Store = core::ObjectStore<Volume>;

  storage::ReplicaApplier applier_;
  Store store_;
  core::Capability volume_;
};

/// storage::ReplicationLink over the at-most-once transaction layer: one
/// Transport per link (links ship from dedicated threads), one
/// transaction per shipment, addressed through the backup's volume
/// capability.
class TransportReplicationLink final : public storage::ReplicationLink {
 public:
  TransportReplicationLink(net::Machine& machine, std::uint64_t seed,
                           std::string peer_name, core::Capability volume);

  [[nodiscard]] std::string peer_name() const override;
  [[nodiscard]] Result<std::uint64_t> ship_cycle(
      std::span<const std::uint8_t> frame) override;
  [[nodiscard]] Result<std::uint64_t> ship_snapshot(
      std::uint64_t rep_lsn, std::size_t shard,
      std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] Result<std::uint64_t> heartbeat(
      std::uint64_t shipped) override;

 private:
  Transport transport_;
  std::string peer_name_;
  core::Capability volume_;
};

/// One backup a primary ships to.
struct ReplicaTarget {
  std::string name;          // diagnostic label (std_info lag lines)
  core::Capability volume;   // the backup ReplicaServer's volume capability
};

/// The --replicate-to wiring: wraps `local` as a replication primary that
/// ships every durable write to each listed backup, acknowledged per
/// `mode`.  Hand the returned backend to a server constructor unchanged --
/// the server's GroupCommitter binds itself to it and every flush cycle
/// ships automatically.  With an empty target list the volume behaves
/// exactly like `local`.
[[nodiscard]] std::shared_ptr<storage::ReplicatedBackend> replicate_to(
    std::shared_ptr<storage::Backend> local, storage::AckMode mode,
    net::Machine& machine, std::uint64_t seed,
    const std::vector<ReplicaTarget>& targets);

/// Client-side failover trigger: seals the backup behind `volume` and
/// returns its final applied floor.
[[nodiscard]] Result<std::uint64_t> rep_promote(
    Transport& transport, const core::Capability& volume);

}  // namespace amoeba::rpc
