// Message filter seam: a hook applied to messages as they leave and enter
// the RPC layer, parameterized by the peer machine id.
//
// This is where the §2.4 software protection plugs in: without F-boxes,
// the capability fields of every message are encrypted with a key selected
// by the (source, destination) machine pair.  The filter abstraction keeps
// rpc ignorant of cryptography while giving softprot exactly the two
// facts it needs: the message and the (unforgeable) peer machine.
#pragma once

#include "amoeba/common/types.hpp"
#include "amoeba/net/message.hpp"

namespace amoeba::rpc {

class MessageFilter {
 public:
  virtual ~MessageFilter() = default;

  /// Transforms an outbound message destined for machine `dst` (e.g. seal
  /// the capability with M[me][dst]).  Called after the destination is
  /// resolved, before transmission.
  virtual void outgoing(net::Message& msg, MachineId dst) = 0;

  /// Transforms an inbound message from machine `src`.  Returning false
  /// marks the message undecipherable (no key for src); the caller treats
  /// it as unsealing_failed.
  [[nodiscard]] virtual bool incoming(net::Message& msg, MachineId src) = 0;
};

}  // namespace amoeba::rpc
