// Client-side blocking RPC (§2.1): "After making a request, a client
// blocks until the reply comes in, so the approach can be regarded as a
// simple remote procedure call mechanism.  The system does not use
// connections or virtual circuits or any other long-lived communication
// structures."
//
// Each transaction picks a fresh one-shot reply get-port G'; the F-box
// puts P' = F(G') on the wire and only this client can receive the reply.
// The transport also implements the kernel's (port -> machine) cache with
// LOCATE broadcast on miss and invalidation when a cached machine's F-box
// rejects the frame (server migrated or died).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stop_token>
#include <unordered_map>

#include <memory>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::rpc {

class Transport {
 public:
  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
    std::uint64_t transactions = 0;
    std::uint64_t timeouts = 0;
  };

  Transport(net::Machine& machine, std::uint64_t seed);

  /// Performs one blocking transaction.  `request.header.dest` must hold
  /// the service's put-port; the reply field is overwritten with a fresh
  /// one-shot port.  Returns the reply message together with the stamped
  /// source machine of the replying server.  Thread-safe: any number of
  /// threads may call trans concurrently on one transport.
  [[nodiscard]] Result<net::Delivery> trans(net::Message request,
                                            std::chrono::milliseconds timeout,
                                            std::stop_token stop = {});

  /// As above with the transport's default timeout (2 s unless changed).
  [[nodiscard]] Result<net::Delivery> trans(net::Message request) {
    return trans(std::move(request), default_timeout_);
  }

  /// Changes the timeout used by the single-argument trans overload
  /// (lossy-network tests and benches want fast failure).
  void set_default_timeout(std::chrono::milliseconds timeout) {
    default_timeout_ = timeout;
  }

  /// Optional signature get-port applied to outgoing requests (the F-box
  /// publishes F(S); receivers authenticate the sender against it).
  void set_signature(Port signature_get_port);

  /// Installs a message filter (capability sealing in F-box-less mode).
  void set_filter(std::shared_ptr<MessageFilter> filter);

  [[nodiscard]] net::Machine& machine() { return machine_; }
  [[nodiscard]] Stats stats() const;

  /// Drops every cached (port -> machine) entry.
  void flush_cache();

 private:
  std::optional<MachineId> resolve(Port put_port);
  void invalidate(Port put_port);

  net::Machine& machine_;
  std::chrono::milliseconds default_timeout_{2000};
  mutable std::mutex mutex_;
  Rng rng_;
  std::unordered_map<Port, MachineId> cache_;
  Port signature_;
  std::shared_ptr<MessageFilter> filter_;
  Stats stats_;
};

}  // namespace amoeba::rpc
