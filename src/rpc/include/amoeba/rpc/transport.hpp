// Client-side RPC core (§2.1), completion-based.
//
// The paper's transaction model is connectionless blocking RPC: "After
// making a request, a client blocks until the reply comes in, so the
// approach can be regarded as a simple remote procedure call mechanism.
// The system does not use connections or virtual circuits or any other
// long-lived communication structures."  This transport keeps those wire
// semantics -- every transaction still picks a fresh one-shot reply
// get-port G', the F-box puts P' = F(G') on the wire, and only this client
// can receive the reply -- but decouples completion order from issue
// order: trans_async() returns a Future immediately, so one client thread
// can pipeline many outstanding transactions.  Internally a completion
// registry keyed by the one-shot reply put-port routes every arriving
// reply (they all land in one shared demux mailbox, drained by one pump
// thread) to its transaction; trans() is trans_async().get().
//
// The transport also implements the kernel's (port -> machine) cache with
// LOCATE broadcast on miss and invalidation when a cached machine's F-box
// rejects the frame (server migrated or died).  Cache entries carry a
// generation stamp so that when many in-flight transactions resolved
// through one stale entry, the first rejected frame invalidates it exactly
// once and re-LOCATEs are single-flight -- no thundering LOCATE storm.
//
// At-most-once over a lossy network (docs/PROTOCOL.md §5).  Every
// transaction is stamped with this transport's random 64-bit client id and
// a monotonically increasing sequence number (header.client/seq +
// kFlagAtMostOnce).  Until the reply arrives or the deadline passes, the
// pump thread retransmits the request on an exponential backoff timer
// (kFlagRetransmit marks the extra copies); the server side suppresses the
// duplicates through its per-client reply cache and re-sends the cached
// reply instead of re-executing, so a transaction either takes effect
// exactly once or fails with ErrorCode::timeout -- never twice.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stop_token>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::rpc {

/// The completion handle of one in-flight transaction.  The issuing
/// Transport resolves every future it hands out -- with the reply, with
/// ErrorCode::timeout when the deadline passes, or with a transport error
/// -- so get() never blocks forever while the transport lives.
class [[nodiscard]] Future {
 public:
  Future() = default;

  /// False for a default-constructed or already-consumed future.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// True once the outcome is available (get() will not block).
  [[nodiscard]] bool ready() const;

  /// Blocks until this future's transaction completes and consumes the
  /// outcome (one-shot; the future is invalid afterwards).  A triggered
  /// stop token abandons the wait with ErrorCode::timeout -- the
  /// transaction itself still completes in the background.  Throws
  /// UsageError when called on an invalid future.
  [[nodiscard]] Result<net::Delivery> get(std::stop_token stop = {});

  /// Waits up to `timeout` for readiness; true when ready.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

 private:
  friend class Transport;

  struct State {
    mutable std::mutex mutex;
    std::condition_variable_any cv;
    std::optional<Result<net::Delivery>> outcome;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class Transport {
 public:
  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_invalidations = 0;
    std::uint64_t transactions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmits = 0;  // extra request copies put on the wire
    // Adaptive retransmission state (Jacobson/Karels): smoothed RTT and
    // variance from replies of never-retransmitted transactions (Karn's
    // rule), and the resulting timer new transactions are issued with.
    std::uint64_t rtt_samples = 0;
    std::uint64_t srtt_us = 0;
    std::uint64_t rttvar_us = 0;
    std::uint64_t rto_ms = 0;  // clamp(srtt + 4*rttvar, floor, cap)
  };

  Transport(net::Machine& machine, std::uint64_t seed);
  /// Joins the completion pump and fails any still-pending future with
  /// ErrorCode::timeout so no waiter is left blocked.
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Issues one transaction without waiting for the reply.
  /// `request.header.dest` must hold the service's put-port; the reply
  /// field is overwritten with a fresh one-shot port.  The returned future
  /// resolves with the reply message together with the stamped source
  /// machine of the replying server, or with an error.  If the FIRST copy
  /// cannot be sent at all (no listener found), the future fails fast
  /// with no_such_port; once a copy was admitted, loss and migration are
  /// covered by retransmission until the deadline (docs/PROTOCOL.md
  /// §5.1).  Thread-safe: any number of threads may issue and pipeline
  /// concurrently, and each thread may keep any number of transactions in
  /// flight.
  [[nodiscard]] Future trans_async(net::Message request,
                                   std::chrono::milliseconds timeout);

  /// As above with the transport's default timeout (2 s unless changed).
  [[nodiscard]] Future trans_async(net::Message request) {
    return trans_async(std::move(request), default_timeout());
  }

  /// Performs one blocking transaction: trans_async(...).get().
  [[nodiscard]] Result<net::Delivery> trans(net::Message request,
                                            std::chrono::milliseconds timeout,
                                            std::stop_token stop = {}) {
    return trans_async(std::move(request), timeout).get(std::move(stop));
  }

  /// As above with the transport's default timeout.
  [[nodiscard]] Result<net::Delivery> trans(net::Message request) {
    return trans(std::move(request), default_timeout());
  }

  /// Changes the timeout used by the single-argument overloads
  /// (lossy-network tests and benches want fast failure).  Safe against
  /// concurrent trans()/trans_async() callers.
  void set_default_timeout(std::chrono::milliseconds timeout) {
    default_timeout_ms_.store(timeout.count(), std::memory_order_relaxed);
  }

  [[nodiscard]] std::chrono::milliseconds default_timeout() const {
    return std::chrono::milliseconds(
        default_timeout_ms_.load(std::memory_order_relaxed));
  }

  /// Tunes the at-most-once retransmission timer.  The first re-send of
  /// an unacknowledged request fires after an ADAPTIVE interval seeded
  /// from observed round-trip times -- clamp(srtt + 4*rttvar, `initial`,
  /// `cap`), the Jacobson/Karels estimator over replies of transactions
  /// that were never retransmitted (Karn's rule keeps ambiguous samples
  /// out) -- so a slow service stops eating spurious duplicate frames
  /// while a fast one is probed no sooner than `initial`.  Before any
  /// sample exists the timer is exactly `initial`; further re-sends
  /// double, capped at `cap`.  initial == 0 disables retransmission (a
  /// dropped frame then simply times out, the pre-at-most-once behavior).
  /// Thread-safe; applies to transactions issued after the call.  The
  /// live estimator is visible through stats().
  void set_retransmit(std::chrono::milliseconds initial,
                      std::chrono::milliseconds cap);

  /// The random 64-bit id stamped into header.client of every request this
  /// transport issues; the server's duplicate-suppression table keys on it
  /// (together with the stamped source machine).
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }

  /// Optional signature get-port applied to outgoing requests (the F-box
  /// publishes F(S); receivers authenticate the sender against it).
  void set_signature(Port signature_get_port);

  /// Installs a message filter (capability sealing in F-box-less mode).
  /// Filters run on issuing threads (outgoing) and on the completion pump
  /// (incoming), so implementations must be internally synchronized.
  void set_filter(std::shared_ptr<MessageFilter> filter);

  [[nodiscard]] net::Machine& machine() { return machine_; }
  [[nodiscard]] Stats stats() const;

  /// Number of transactions currently awaiting their reply.
  [[nodiscard]] std::size_t in_flight() const;

  /// Drops every cached (port -> machine) entry.
  void flush_cache();

 private:
  struct CacheEntry {
    MachineId machine;
    std::uint64_t generation;
  };

  /// One registered, unreplied transaction.
  struct Pending {
    std::shared_ptr<Future::State> state;
    net::Receiver receiver;  // keeps the one-shot GET alive
    std::chrono::steady_clock::time_point deadline;
    // Retransmission state: the unsealed request (reply port already
    // drawn) so the pump can put further copies on the wire, the next
    // send time, and the backoff interval that produced it.  next_send ==
    // time_point::max() when retransmission is disabled.  issued_at /
    // retransmitted feed the RTT estimator (Karn: only never-retransmitted
    // transactions yield samples).
    net::Message request;
    std::chrono::steady_clock::time_point next_send;
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point issued_at;
    bool retransmitted = false;
  };

  std::optional<CacheEntry> resolve(Port put_port);
  void invalidate(Port put_port, std::uint64_t generation);
  /// Resolves the destination, applies the outgoing filter to a sealed
  /// copy, and transmits; invalidates + retries once on a stale cache
  /// entry.  Returns whether any copy was admitted by a remote F-box.
  bool send_request(const net::Message& request,
                    const std::shared_ptr<MessageFilter>& filter,
                    std::optional<CacheEntry> fast_dst);

  void pump(std::stop_token stop);
  void settle_all(std::deque<net::Delivery>&& batch);
  void expire_and_retransmit();
  static void complete(Pending& pending, Result<net::Delivery> outcome);

  [[nodiscard]] std::chrono::milliseconds retransmit_initial() const {
    return std::chrono::milliseconds(
        retransmit_initial_ms_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::chrono::milliseconds retransmit_cap() const {
    return std::chrono::milliseconds(
        retransmit_cap_ms_.load(std::memory_order_relaxed));
  }
  /// The adaptive first-retransmit interval; caller holds mutex_.
  [[nodiscard]] std::chrono::milliseconds adaptive_rto_locked() const;
  /// Feeds one RTT sample into the estimator; caller holds mutex_.
  void record_rtt_locked(std::chrono::microseconds sample);

  net::Machine& machine_;
  std::atomic<std::int64_t> default_timeout_ms_{2000};
  std::atomic<std::int64_t> retransmit_initial_ms_{25};
  std::atomic<std::int64_t> retransmit_cap_ms_{400};
  std::uint64_t client_id_ = 0;  // immutable after construction

  // Guards rng/signature/filter/stats and the location cache (including
  // the single-flight LOCATE set).
  mutable std::mutex mutex_;
  std::condition_variable locate_cv_;
  Rng rng_;
  std::unordered_map<Port, CacheEntry> cache_;
  std::unordered_set<Port> locating_;  // ports with a LOCATE in flight
  std::uint64_t next_generation_ = 0;
  std::uint64_t next_seq_ = 0;  // at-most-once sequence; under mutex_
  Port signature_;
  std::shared_ptr<MessageFilter> filter_;
  Stats stats_;  // srtt/rttvar live in here, updated under mutex_

  // Completion registry: every one-shot reply port is registered into this
  // shared mailbox; the pump thread demultiplexes arrivals back to their
  // futures and fails overdue entries.
  std::shared_ptr<net::Mailbox> replies_;
  mutable std::mutex pending_mutex_;
  std::unordered_map<Port, Pending> pending_;
  // Earliest deadline OR retransmit time across pending_; under
  // pending_mutex_.  Only ever errs early (one spurious wake), never late.
  std::chrono::steady_clock::time_point pump_wakes_at_;
  std::jthread pump_;  // last member: must die before the registries
};

}  // namespace amoeba::rpc
