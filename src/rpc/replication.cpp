#include "amoeba/rpc/replication.hpp"

#include <utility>

#include "amoeba/rpc/typed.hpp"

namespace amoeba::rpc {

ReplicaServer::ReplicaServer(net::Machine& machine, Port get_port,
                             std::shared_ptr<const core::ProtectionScheme> scheme,
                             std::uint64_t seed,
                             std::shared_ptr<storage::Backend> local)
    : Service(machine, get_port, "replica"),
      applier_(std::move(local)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed) {
  // The control-plane store is deliberately in-memory: the volume
  // capability is deployment configuration (minted fresh per incarnation
  // and handed to the primary), not replicated state.  The DATA the
  // applier maintains lives in the local backend and survives restarts.
  volume_ = store_.create(Volume{});

  register_std_ops(*this, store_);
  set_info_detail([this] {
    std::string line =
        applier_.promoted() ? "role=promoted" : "role=backup";
    line += " applied=" + std::to_string(applier_.applied());
    return line;
  });

  on(rep_ops::kAppendGroup, store_,
     [this](const auto& call) -> Result<rep_ops::AckReply> {
       const auto applied = applier_.apply_cycle(call.body.frame);
       if (!applied.ok()) {
         return applied.error();
       }
       return rep_ops::AckReply{applied.value()};
     });
  on(rep_ops::kInstallSnapshot, store_,
     [this](const auto& call) -> Result<rep_ops::AckReply> {
       const auto applied = applier_.install_snapshot(
           call.body.rep_lsn, static_cast<std::size_t>(call.body.shard),
           call.body.bytes);
       if (!applied.ok()) {
         return applied.error();
       }
       return rep_ops::AckReply{applied.value()};
     });
  on(rep_ops::kHeartbeat, store_,
     [this](const auto&) -> Result<rep_ops::AckReply> {
       return rep_ops::AckReply{applier_.applied()};
     });
  on(rep_ops::kPromote, store_,
     [this](const auto&) -> Result<rep_ops::AckReply> {
       return rep_ops::AckReply{applier_.promote()};
     });
}

TransportReplicationLink::TransportReplicationLink(net::Machine& machine,
                                                   std::uint64_t seed,
                                                   std::string peer_name,
                                                   core::Capability volume)
    : transport_(machine, seed),
      peer_name_(std::move(peer_name)),
      volume_(volume) {}

std::string TransportReplicationLink::peer_name() const { return peer_name_; }

Result<std::uint64_t> TransportReplicationLink::ship_cycle(
    std::span<const std::uint8_t> frame) {
  rep_ops::AppendGroupRequest request;
  request.frame.assign(frame.begin(), frame.end());
  const auto reply = call(transport_, volume_.server_port,
                          rep_ops::kAppendGroup, volume_, request);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().applied;
}

Result<std::uint64_t> TransportReplicationLink::ship_snapshot(
    std::uint64_t rep_lsn, std::size_t shard,
    std::span<const std::uint8_t> bytes) {
  rep_ops::InstallSnapshotRequest request;
  request.rep_lsn = rep_lsn;
  request.shard = shard;
  request.bytes.assign(bytes.begin(), bytes.end());
  const auto reply = call(transport_, volume_.server_port,
                          rep_ops::kInstallSnapshot, volume_, request);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().applied;
}

Result<std::uint64_t> TransportReplicationLink::heartbeat(
    std::uint64_t shipped) {
  const auto reply = call(transport_, volume_.server_port,
                          rep_ops::kHeartbeat, volume_, {shipped});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().applied;
}

std::shared_ptr<storage::ReplicatedBackend> replicate_to(
    std::shared_ptr<storage::Backend> local, storage::AckMode mode,
    net::Machine& machine, std::uint64_t seed,
    const std::vector<ReplicaTarget>& targets) {
  auto replicated =
      std::make_shared<storage::ReplicatedBackend>(std::move(local), mode);
  for (const ReplicaTarget& target : targets) {
    replicated->attach_peer(std::make_shared<TransportReplicationLink>(
        machine, seed, target.name, target.volume));
  }
  return replicated;
}

Result<std::uint64_t> rep_promote(Transport& transport,
                                  const core::Capability& volume) {
  const auto reply =
      call(transport, volume.server_port, rep_ops::kPromote, volume);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().applied;
}

}  // namespace amoeba::rpc
