#include "amoeba/rpc/server.hpp"

#include <algorithm>

#include "amoeba/common/error.hpp"

namespace amoeba::rpc {

Service::Service(net::Machine& machine, Port get_port, std::string name)
    : machine_(&machine), get_port_(get_port), name_(std::move(name)) {}

Service::~Service() { stop(); }

void Service::start(int workers) {
  if (!workers_.empty()) {
    throw UsageError("Service::start: already running");
  }
  if (workers < 1) {
    throw UsageError("Service::start: need at least one worker");
  }
  // Block until every worker has its GET registered, so a trans() issued
  // right after start() cannot race the registrations.
  std::latch ready(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, &ready](std::stop_token st) { run(st, ready); });
  }
  ready.wait();
}

void Service::stop() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  workers_.clear();  // jthread destructor joins
}

void Service::rebind(net::Machine& machine) {
  if (!workers_.empty()) {
    throw UsageError("Service::rebind: stop the service first");
  }
  machine_ = &machine;
}

Port Service::put_port() const {
  return machine_->fbox().listen_port(get_port_);
}

void Service::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Service::set_allowed_signatures(std::vector<Port> published_signatures) {
  const std::lock_guard lock(filter_mutex_);
  allowed_signatures_ = std::move(published_signatures);
}

void Service::on(std::uint16_t opcode, Handler handler) {
  if (!workers_.empty()) {
    throw UsageError("Service::on: register handlers before start()");
  }
  if (handler == nullptr) {
    throw UsageError("Service::on: null handler");
  }
  if (!handlers_.emplace(opcode, std::move(handler)).second) {
    throw UsageError("Service::on: duplicate handler for opcode");
  }
}

net::Message Service::handle(const net::Delivery& request) {
  // The table is frozen once workers run (on() rejects late registration),
  // so this lookup is lock-free and race-free.
  const auto it = handlers_.find(request.message.header.opcode);
  if (it == handlers_.end()) {
    return net::make_reply(request.message, ErrorCode::no_such_operation);
  }
  return it->second(request);
}

void Service::run(std::stop_token stop, std::latch& ready) {
  // GET(G): the registration lives on this worker's stack, so a stopping
  // worker withdraws its F-box registration on exit.
  net::Receiver receiver = machine_->listen(get_port_);
  ready.count_down();
  while (!stop.stop_requested()) {
    auto delivery = receiver.receive(stop);
    if (!delivery.has_value()) {
      break;  // stop requested or mailbox closed
    }
    std::shared_ptr<MessageFilter> filter;
    std::vector<Port> allowed_signatures;
    {
      const std::lock_guard lock(filter_mutex_);
      filter = filter_;
      allowed_signatures = allowed_signatures_;
    }
    net::Message reply;
    if (!allowed_signatures.empty() &&
        std::find(allowed_signatures.begin(), allowed_signatures.end(),
                  delivery->message.header.signature) ==
            allowed_signatures.end()) {
      // Sender authentication (§2.2): only the true owner of S can make
      // the published F(S) appear here -- his F-box computes it from the
      // secret; an intruder submitting the observed F(S) ends up with
      // F(F(S)) on the wire.
      reply = net::make_reply(delivery->message, ErrorCode::permission_denied);
    } else if (filter != nullptr &&
               !filter->incoming(delivery->message, delivery->src)) {
      reply = net::make_reply(delivery->message, ErrorCode::unsealing_failed);
    } else {
      try {
        reply = handle(*delivery);
      } catch (const std::exception&) {
        // A handler failure (bad_alloc on an oversized request, a violated
        // precondition) must not take the whole service process down; the
        // offending client gets the invariant-failure status instead.
        reply = net::make_reply(delivery->message, ErrorCode::internal);
      }
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const Port reply_port = delivery->message.header.reply;
    if (reply_port.is_null()) {
      continue;  // one-way request
    }
    reply.header.dest = reply_port;
    reply.header.opcode = delivery->message.header.opcode;
    if (filter != nullptr) {
      filter->outgoing(reply, delivery->src);
    }
    // Reply straight to the stamped source machine; no locate needed.
    machine_->transmit(std::move(reply), delivery->src);
  }
}

}  // namespace amoeba::rpc
