#include "amoeba/rpc/server.hpp"

#include <algorithm>
#include <thread>

#include "amoeba/common/error.hpp"
#include "amoeba/rpc/batch.hpp"

namespace amoeba::rpc {

Service::Service(net::Machine& machine, Port get_port, std::string name)
    : machine_(&machine), get_port_(get_port), name_(std::move(name)) {}

Service::~Service() { stop(); }

void Service::start(int workers) {
  if (!workers_.empty()) {
    throw UsageError("Service::start: already running");
  }
  if (workers < 1) {
    throw UsageError("Service::start: need at least one worker");
  }
  // Block until every worker has its GET registered, so a trans() issued
  // right after start() cannot race the registrations.
  std::latch ready(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, &ready](std::stop_token st) { run(st, ready); });
  }
  ready.wait();
}

void Service::stop() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  workers_.clear();  // jthread destructor joins
}

void Service::rebind(net::Machine& machine) {
  if (!workers_.empty()) {
    throw UsageError("Service::rebind: stop the service first");
  }
  machine_ = &machine;
}

Port Service::put_port() const {
  return machine_->fbox().listen_port(get_port_);
}

void Service::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Service::set_allowed_signatures(std::vector<Port> published_signatures) {
  const std::lock_guard lock(filter_mutex_);
  allowed_signatures_ = std::move(published_signatures);
}

void Service::set_batch_fan_out(int helpers) {
  if (helpers < 1) {
    throw UsageError("Service::set_batch_fan_out: need at least one helper");
  }
  batch_fan_out_.store(helpers, std::memory_order_relaxed);
}

void Service::on(std::uint16_t opcode, Handler handler) {
  if (!workers_.empty()) {
    throw UsageError("Service::on: register handlers before start()");
  }
  if (handler == nullptr) {
    throw UsageError("Service::on: null handler");
  }
  if (opcode == kBatchOpcode) {
    throw UsageError("Service::on: kBatchOpcode is reserved for envelopes");
  }
  if (!handlers_.emplace(opcode, std::move(handler)).second) {
    throw UsageError("Service::on: duplicate handler for opcode");
  }
}

void Service::note_op(OpInfo info) { typed_ops_.push_back(std::move(info)); }

net::Message Service::handle(const net::Delivery& request) {
  // The table is frozen once workers run (on() rejects late registration),
  // so this lookup is lock-free and race-free.
  const auto it = handlers_.find(request.message.header.opcode);
  if (it == handlers_.end()) {
    return net::make_reply(request.message, ErrorCode::no_such_operation);
  }
  return it->second(request);
}

net::Message Service::handle_one(const net::Delivery& request) {
  try {
    return handle(request);
  } catch (const std::exception&) {
    // A handler failure (bad_alloc on an oversized request, a violated
    // precondition) must not take the whole service process down; the
    // offending client gets the invariant-failure status instead.
    return net::make_reply(request.message, ErrorCode::internal);
  }
}

net::Message Service::handle_batch(const net::Delivery& request) {
  auto subs = decode_batch_request(request.message.data);
  if (!subs.has_value()) {
    return net::make_reply(request.message, ErrorCode::invalid_argument);
  }
  batched_requests_.fetch_add(subs->size(), std::memory_order_relaxed);
  std::vector<BatchReply> replies(subs->size());
  const auto process = [&](std::size_t i) {
    BatchRequest& sub = (*subs)[i];
    net::Delivery sub_request;
    sub_request.src = request.src;
    sub_request.message.header.dest = request.message.header.dest;
    sub_request.message.header.opcode = sub.opcode;
    sub_request.message.header.signature = request.message.header.signature;
    sub_request.message.header.capability = sub.capability;
    sub_request.message.header.params = sub.params;
    sub_request.message.data = std::move(sub.data);
    net::Message sub_reply;
    if (sub.opcode == kBatchOpcode) {
      // No nested envelopes: unbounded recursion for no amortization win.
      sub_reply =
          net::make_reply(sub_request.message, ErrorCode::invalid_argument);
    } else {
      sub_reply = handle_one(sub_request);
    }
    replies[i] = BatchReply{sub_reply.header.status,
                            sub_reply.header.capability,
                            sub_reply.header.params,
                            std::move(sub_reply.data)};
  };
  const std::size_t fan_out =
      std::min<std::size_t>(
          static_cast<std::size_t>(
              batch_fan_out_.load(std::memory_order_relaxed)),
          subs->size());
  if (fan_out <= 1) {
    for (std::size_t i = 0; i < subs->size(); ++i) {
      process(i);
    }
  } else {
    // Strided fan-out across transient helpers; handlers are already safe
    // under multi-worker concurrency, so this adds parallelism, not risk.
    std::vector<std::jthread> helpers;
    helpers.reserve(fan_out);
    for (std::size_t h = 0; h < fan_out; ++h) {
      helpers.emplace_back([&, h] {
        for (std::size_t i = h; i < replies.size(); i += fan_out) {
          process(i);
        }
      });
    }
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.flags |= net::kFlagBatch;
  reply.data = encode_batch(replies);
  return reply;
}

void Service::run(std::stop_token stop, std::latch& ready) {
  // GET(G): the registration lives on this worker's stack, so a stopping
  // worker withdraws its F-box registration on exit.
  net::Receiver receiver = machine_->listen(get_port_);
  ready.count_down();
  while (!stop.stop_requested()) {
    auto delivery = receiver.receive(stop);
    if (!delivery.has_value()) {
      break;  // stop requested or mailbox closed
    }
    std::shared_ptr<MessageFilter> filter;
    std::vector<Port> allowed_signatures;
    {
      const std::lock_guard lock(filter_mutex_);
      filter = filter_;
      allowed_signatures = allowed_signatures_;
    }
    net::Message reply;
    if (!allowed_signatures.empty() &&
        std::find(allowed_signatures.begin(), allowed_signatures.end(),
                  delivery->message.header.signature) ==
            allowed_signatures.end()) {
      // Sender authentication (§2.2): only the true owner of S can make
      // the published F(S) appear here -- his F-box computes it from the
      // secret; an intruder submitting the observed F(S) ends up with
      // F(F(S)) on the wire.
      reply = net::make_reply(delivery->message, ErrorCode::permission_denied);
    } else if (filter != nullptr &&
               !filter->incoming(delivery->message, delivery->src)) {
      reply = net::make_reply(delivery->message, ErrorCode::unsealing_failed);
    } else if (delivery->message.header.opcode == kBatchOpcode) {
      reply = handle_batch(*delivery);
    } else {
      reply = handle_one(*delivery);
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const Port reply_port = delivery->message.header.reply;
    if (reply_port.is_null()) {
      continue;  // one-way request
    }
    reply.header.dest = reply_port;
    reply.header.opcode = delivery->message.header.opcode;
    if (filter != nullptr) {
      filter->outgoing(reply, delivery->src);
    }
    // Reply straight to the stamped source machine; no locate needed.
    machine_->transmit(std::move(reply), delivery->src);
  }
}

}  // namespace amoeba::rpc
