#include "amoeba/rpc/server.hpp"

#include <algorithm>
#include <thread>

#include "amoeba/common/error.hpp"
#include "amoeba/rpc/batch.hpp"

namespace amoeba::rpc {

Service::Service(net::Machine& machine, Port get_port, std::string name)
    : machine_(&machine), get_port_(get_port), name_(std::move(name)) {}

Service::~Service() { stop(); }

void Service::start(int workers) {
  if (!workers_.empty()) {
    throw UsageError("Service::start: already running");
  }
  if (workers < 1) {
    throw UsageError("Service::start: need at least one worker");
  }
  // Block until every worker has its GET registered, so a trans() issued
  // right after start() cannot race the registrations.
  std::latch ready(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, &ready](std::stop_token st) { run(st, ready); });
  }
  ready.wait();
}

void Service::stop() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  workers_.clear();  // jthread destructor joins
}

void Service::rebind(net::Machine& machine) {
  if (!workers_.empty()) {
    throw UsageError("Service::rebind: stop the service first");
  }
  machine_ = &machine;
}

Port Service::put_port() const {
  return machine_->fbox().listen_port(get_port_);
}

void Service::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Service::set_allowed_signatures(std::vector<Port> published_signatures) {
  const std::lock_guard lock(filter_mutex_);
  allowed_signatures_ = std::move(published_signatures);
}

void Service::set_batch_fan_out(int helpers) {
  if (helpers < 1) {
    throw UsageError("Service::set_batch_fan_out: need at least one helper");
  }
  batch_fan_out_.store(helpers, std::memory_order_relaxed);
}

void Service::on(std::uint16_t opcode, Handler handler) {
  if (!workers_.empty()) {
    throw UsageError("Service::on: register handlers before start()");
  }
  if (handler == nullptr) {
    throw UsageError("Service::on: null handler");
  }
  if (opcode == kBatchOpcode) {
    throw UsageError("Service::on: kBatchOpcode is reserved for envelopes");
  }
  if (!handlers_.emplace(opcode, std::move(handler)).second) {
    throw UsageError("Service::on: duplicate handler for opcode");
  }
}

void Service::note_op(OpInfo info) { typed_ops_.push_back(std::move(info)); }

// ------------------------------------------------------- at-most-once cache

Service::ReplyCacheStats Service::reply_cache_stats() const {
  const std::lock_guard lock(reply_cache_mutex_);
  ReplyCacheStats stats = reply_cache_counters_;
  stats.clients = reply_cache_.size();
  for (const auto& [key, entry] : reply_cache_) {
    stats.entries += entry.replies.size();
  }
  return stats;
}

void Service::set_reply_cache_limits(std::size_t window_per_client,
                                     std::size_t max_clients) {
  const std::lock_guard lock(reply_cache_mutex_);
  reply_cache_window_ = window_per_client;
  reply_cache_max_clients_ = max_clients;
}

void Service::flush_reply_cache() {
  const std::lock_guard lock(reply_cache_mutex_);
  for (const auto& [key, entry] : reply_cache_) {
    reply_cache_counters_.evicted_entries += entry.replies.size();
  }
  reply_cache_counters_.evicted_clients += reply_cache_.size();
  reply_cache_.clear();
  reply_cache_loaded_ = 0;
}

Service::ReplyCacheMap::iterator Service::lru_reply_cache_victim(
    const ClientKey& excluded, bool want_tombstones) {
  auto victim = reply_cache_.end();
  for (auto it = reply_cache_.begin(); it != reply_cache_.end(); ++it) {
    const ClientEntry& entry = it->second;
    if (it->first == excluded || entry.replies.empty() != want_tombstones) {
      continue;
    }
    if (!want_tombstones && entry.executing != 0) {
      continue;
    }
    if (victim == reply_cache_.end() ||
        entry.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  return victim;
}

Service::DupVerdict Service::claim_request(const net::Delivery& request,
                                           net::Message& cached) {
  const ClientKey key{request.src.value(), request.message.header.client};
  const std::uint64_t seq = request.message.header.seq;
  const std::lock_guard lock(reply_cache_mutex_);
  if (reply_cache_window_ == 0) {
    return DupVerdict::fresh;  // suppression disabled: execute everything
  }
  const auto [self, created] = reply_cache_.try_emplace(key);
  ClientEntry& entry = self->second;
  entry.last_used = ++reply_cache_tick_;
  if (created && reply_cache_max_clients_ != 0 &&
      reply_cache_.size() > kTombstoneFactor * reply_cache_max_clients_) {
    // Tombstone pool bound: header.client is a self-chosen field, so an
    // id-churning peer must not grow the map without limit.  Erase the
    // least recently used floor-only tombstone (see PROTOCOL.md §5.4 for
    // what that forgets).
    const auto victim = lru_reply_cache_victim(key, /*want_tombstones=*/true);
    if (victim != reply_cache_.end()) {
      ++reply_cache_counters_.evicted_clients;
      reply_cache_.erase(victim);
    }
  }
  if (seq <= entry.floor) {
    // Evicted region: the original may or may not have executed, so the
    // only at-most-once-safe answer is silence (the client times out).
    ++reply_cache_counters_.duplicates_suppressed;
    return DupVerdict::drop;
  }
  const auto it = entry.replies.find(seq);
  if (it != entry.replies.end()) {
    ++reply_cache_counters_.duplicates_suppressed;
    if (!it->second.done) {
      return DupVerdict::drop;  // original still executing on a worker
    }
    ++reply_cache_counters_.replies_resent;
    cached = it->second.reply;
    return DupVerdict::resend;
  }
  if (entry.replies.empty()) {
    ++reply_cache_loaded_;
  }
  entry.replies.emplace(seq, CachedReply{});  // claimed: executing
  ++entry.executing;
  if (reply_cache_max_clients_ != 0 &&
      reply_cache_loaded_ > reply_cache_max_clients_) {
    // Client cap: demote the least recently used OTHER client with no
    // transaction still executing (rare; linear scan is fine).  Demotion
    // drops the cached replies -- the heavy part -- but KEEPS the entry
    // as a floor tombstone, so duplicates of the evicted transactions
    // still drop silently instead of re-executing (the at-most-once
    // guarantee survives eviction; see docs/PROTOCOL.md §5.4).
    const auto victim =
        lru_reply_cache_victim(key, /*want_tombstones=*/false);
    if (victim != reply_cache_.end()) {
      ClientEntry& demoted = victim->second;
      reply_cache_counters_.evicted_entries += demoted.replies.size();
      ++reply_cache_counters_.evicted_clients;
      demoted.floor = std::max(demoted.floor, demoted.replies.rbegin()->first);
      demoted.replies.clear();
      --reply_cache_loaded_;
    }
  }
  return DupVerdict::fresh;
}

void Service::store_reply(const net::Delivery& request,
                          const net::Message& reply) {
  const ClientKey key{request.src.value(), request.message.header.client};
  const std::uint64_t seq = request.message.header.seq;
  const std::lock_guard lock(reply_cache_mutex_);
  const auto cit = reply_cache_.find(key);
  if (cit == reply_cache_.end()) {
    return;  // flushed or evicted while the handler ran
  }
  auto& entry = cit->second;
  const auto rit = entry.replies.find(seq);
  if (rit == entry.replies.end()) {
    return;
  }
  if (!rit->second.done && entry.executing > 0) {
    --entry.executing;
  }
  rit->second.done = true;
  rit->second.reply = reply;
  // Per-client window: age out the oldest COMPLETED transactions (an
  // executing one blocks the sweep; the window may briefly overshoot).
  while (entry.replies.size() > reply_cache_window_ &&
         entry.replies.begin()->second.done) {
    entry.floor = std::max(entry.floor, entry.replies.begin()->first);
    entry.replies.erase(entry.replies.begin());
    ++reply_cache_counters_.evicted_entries;
  }
}

net::Message Service::handle(const net::Delivery& request) {
  // The table is frozen once workers run (on() rejects late registration),
  // so this lookup is lock-free and race-free.
  const auto it = handlers_.find(request.message.header.opcode);
  if (it == handlers_.end()) {
    return net::make_reply(request.message, ErrorCode::no_such_operation);
  }
  return it->second(request);
}

net::Message Service::handle_one(const net::Delivery& request) {
  try {
    return handle(request);
  } catch (const std::exception&) {
    // A handler failure (bad_alloc on an oversized request, a violated
    // precondition) must not take the whole service process down; the
    // offending client gets the invariant-failure status instead.
    return net::make_reply(request.message, ErrorCode::internal);
  }
}

net::Message Service::handle_batch(const net::Delivery& request) {
  auto subs = decode_batch_request(request.message.data);
  if (!subs.has_value()) {
    return net::make_reply(request.message, ErrorCode::invalid_argument);
  }
  batched_requests_.fetch_add(subs->size(), std::memory_order_relaxed);
  std::vector<BatchReply> replies(subs->size());
  const auto process = [&](std::size_t i) {
    BatchRequest& sub = (*subs)[i];
    net::Delivery sub_request;
    sub_request.src = request.src;
    sub_request.message.header.dest = request.message.header.dest;
    sub_request.message.header.opcode = sub.opcode;
    sub_request.message.header.signature = request.message.header.signature;
    sub_request.message.header.capability = sub.capability;
    sub_request.message.header.params = sub.params;
    sub_request.message.data = std::move(sub.data);
    net::Message sub_reply;
    if (sub.opcode == kBatchOpcode) {
      // No nested envelopes: unbounded recursion for no amortization win.
      sub_reply =
          net::make_reply(sub_request.message, ErrorCode::invalid_argument);
    } else {
      sub_reply = handle_one(sub_request);
    }
    replies[i] = BatchReply{sub_reply.header.status,
                            sub_reply.header.capability,
                            sub_reply.header.params,
                            std::move(sub_reply.data)};
  };
  const std::size_t fan_out =
      std::min<std::size_t>(
          static_cast<std::size_t>(
              batch_fan_out_.load(std::memory_order_relaxed)),
          subs->size());
  if (fan_out <= 1) {
    for (std::size_t i = 0; i < subs->size(); ++i) {
      process(i);
    }
  } else {
    // Strided fan-out across transient helpers; handlers are already safe
    // under multi-worker concurrency, so this adds parallelism, not risk.
    std::vector<std::jthread> helpers;
    helpers.reserve(fan_out);
    for (std::size_t h = 0; h < fan_out; ++h) {
      helpers.emplace_back([&, h] {
        for (std::size_t i = h; i < replies.size(); i += fan_out) {
          process(i);
        }
      });
    }
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.flags |= net::kFlagBatch;
  reply.data = encode_batch(replies);
  return reply;
}

void Service::run(std::stop_token stop, std::latch& ready) {
  // GET(G): the registration lives on this worker's stack, so a stopping
  // worker withdraws its F-box registration on exit.
  net::Receiver receiver = machine_->listen(get_port_);
  ready.count_down();
  while (!stop.stop_requested()) {
    auto delivery = receiver.receive(stop);
    if (!delivery.has_value()) {
      break;  // stop requested or mailbox closed
    }
    std::shared_ptr<MessageFilter> filter;
    std::vector<Port> allowed_signatures;
    {
      const std::lock_guard lock(filter_mutex_);
      filter = filter_;
      allowed_signatures = allowed_signatures_;
    }
    net::Message reply;
    bool executed = true;      // false: duplicate answered from the cache
    bool cache_reply = false;  // true: claimed fresh, publish after handling
    if (!allowed_signatures.empty() &&
        std::find(allowed_signatures.begin(), allowed_signatures.end(),
                  delivery->message.header.signature) ==
            allowed_signatures.end()) {
      // Sender authentication (§2.2): only the true owner of S can make
      // the published F(S) appear here -- his F-box computes it from the
      // secret; an intruder submitting the observed F(S) ends up with
      // F(F(S)) on the wire.
      reply = net::make_reply(delivery->message, ErrorCode::permission_denied);
    } else if (filter != nullptr &&
               !filter->incoming(delivery->message, delivery->src)) {
      reply = net::make_reply(delivery->message, ErrorCode::unsealing_failed);
    } else {
      // Duplicate suppression runs after the signature and filter gates:
      // a frame replayed from the wrong machine can neither poison nor
      // read the cache (and the cache is keyed by the stamped source
      // machine on top of that).
      // seq 0 is malformed under the spec (sequences start at 1); such a
      // frame is served WITHOUT at-most-once semantics rather than
      // swallowed by the floor check.
      const bool at_most_once =
          (delivery->message.header.flags & net::kFlagAtMostOnce) != 0 &&
          delivery->message.header.client != 0 &&
          delivery->message.header.seq != 0;
      if (at_most_once) {
        switch (claim_request(*delivery, reply)) {
          case DupVerdict::drop:
            continue;  // executing elsewhere or evicted: say nothing
          case DupVerdict::resend:
            executed = false;  // cached reply already copied into `reply`
            break;
          case DupVerdict::fresh:
            cache_reply = true;
            break;
        }
      }
      if (executed) {
        reply = delivery->message.header.opcode == kBatchOpcode
                    ? handle_batch(*delivery)
                    : handle_one(*delivery);
        if (cache_reply) {
          // Cached in pre-dest, pre-filter form; a re-send recomputes the
          // destination from the duplicate and re-seals per transmission.
          store_reply(*delivery, reply);
        }
      }
    }
    if (executed) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    const Port reply_port = delivery->message.header.reply;
    if (reply_port.is_null()) {
      continue;  // one-way request
    }
    reply.header.dest = reply_port;
    reply.header.opcode = delivery->message.header.opcode;
    if (filter != nullptr) {
      filter->outgoing(reply, delivery->src);
    }
    // Reply straight to the stamped source machine; no locate needed.
    machine_->transmit(std::move(reply), delivery->src);
  }
}

}  // namespace amoeba::rpc
