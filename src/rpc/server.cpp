#include "amoeba/rpc/server.hpp"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace amoeba::rpc {

namespace {
/// Metadata key the reply-cache suppression state persists under
/// (docs/PROTOCOL.md §8).
constexpr std::string_view kReplyFloorsKey = "reply-floors";
/// Leading magic of the body-carrying image ("RCV2").  The floors-only
/// image of earlier versions starts with its row count instead; the
/// magic's value is far above any plausible count, so the two parse
/// unambiguously.
constexpr std::uint32_t kReplyMetaMagic = 0x52435632u;

/// Serializes one completed reply in wire-independent form: everything a
/// re-send needs except the fields recomputed per transmission (dest,
/// opcode) or known from the persisted key (client, seq).
void encode_reply_body(const net::Message& reply, Writer& w) {
  w.u16(reply.header.flags);
  w.u16(static_cast<std::uint16_t>(reply.header.status));
  w.raw(reply.header.capability);
  for (const std::uint64_t p : reply.header.params) {
    w.u64(p);
  }
  w.bytes(reply.data);
}

[[nodiscard]] net::Message decode_reply_body(Reader& r, std::uint64_t client,
                                             std::uint64_t seq) {
  net::Message reply;
  reply.header.flags = r.u16();
  reply.header.status = static_cast<ErrorCode>(r.u16());
  r.raw(reply.header.capability);
  for (std::uint64_t& p : reply.header.params) {
    p = r.u64();
  }
  reply.data = r.bytes();
  reply.header.client = client;
  reply.header.seq = seq;
  return reply;
}
}  // namespace

Service::Service(net::Machine& machine, Port get_port, std::string name)
    : machine_(&machine), get_port_(get_port), name_(std::move(name)) {}

Service::~Service() { stop(); }

void Service::start(int workers) {
  if (!workers_.empty()) {
    throw UsageError("Service::start: already running");
  }
  if (workers < 1) {
    throw UsageError("Service::start: need at least one worker");
  }
  // Block until every worker has its GET registered, so a trans() issued
  // right after start() cannot race the registrations.
  std::latch ready(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, &ready](std::stop_token st) { run(st, ready); });
  }
  ready.wait();
}

void Service::stop() {
  for (auto& w : workers_) {
    w.request_stop();
  }
  workers_.clear();  // jthread destructor joins
}

void Service::rebind(net::Machine& machine) {
  if (!workers_.empty()) {
    throw UsageError("Service::rebind: stop the service first");
  }
  machine_ = &machine;
}

Port Service::put_port() const {
  return machine_->fbox().listen_port(get_port_);
}

void Service::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(filter_mutex_);
  filter_ = std::move(filter);
}

void Service::set_allowed_signatures(std::vector<Port> published_signatures) {
  const std::lock_guard lock(filter_mutex_);
  allowed_signatures_ = std::move(published_signatures);
}

void Service::set_batch_fan_out(int helpers) {
  if (helpers < 1) {
    throw UsageError("Service::set_batch_fan_out: need at least one helper");
  }
  batch_fan_out_.store(helpers, std::memory_order_relaxed);
}

void Service::on(std::uint16_t opcode, Handler handler) {
  if (!workers_.empty()) {
    throw UsageError("Service::on: register handlers before start()");
  }
  if (handler == nullptr) {
    throw UsageError("Service::on: null handler");
  }
  if (opcode == kBatchOpcode) {
    throw UsageError("Service::on: kBatchOpcode is reserved for envelopes");
  }
  if (!handlers_.emplace(opcode, std::move(handler)).second) {
    throw UsageError("Service::on: duplicate handler for opcode");
  }
}

void Service::note_op(OpInfo info) {
  op_metrics_.emplace(info.opcode, std::make_unique<OpMetrics>());
  typed_ops_.push_back(std::move(info));
}

std::vector<Service::OpMetricsSnapshot> Service::op_metrics() const {
  std::vector<OpMetricsSnapshot> out;
  out.reserve(typed_ops_.size());
  for (const OpInfo& op : typed_ops_) {
    const auto it = op_metrics_.find(op.opcode);
    if (it == op_metrics_.end()) {
      continue;
    }
    const OpMetrics& m = *it->second;
    out.push_back({op.name, m.calls.load(std::memory_order_relaxed),
                   m.errors.load(std::memory_order_relaxed),
                   m.total_us.load(std::memory_order_relaxed),
                   m.max_us.load(std::memory_order_relaxed)});
  }
  return out;
}

// ------------------------------------------------------- at-most-once cache

Service::ReplyCacheStats Service::reply_cache_stats() const {
  ReplyCacheStats stats;
  for (const ReplyCacheStripe& stripe : reply_cache_stripes_) {
    const std::lock_guard lock(stripe.mutex);
    stats.duplicates_suppressed += stripe.counters.duplicates_suppressed;
    stats.replies_resent += stripe.counters.replies_resent;
    stats.evicted_entries += stripe.counters.evicted_entries;
    stats.evicted_clients += stripe.counters.evicted_clients;
    stats.clients += stripe.map.size();
    for (const auto& [key, entry] : stripe.map) {
      stats.entries += entry.replies.size();
    }
  }
  return stats;
}

void Service::set_reply_cache_limits(std::size_t window_per_client,
                                     std::size_t max_clients) {
  reply_cache_window_.store(window_per_client, std::memory_order_relaxed);
  reply_cache_max_clients_.store(max_clients, std::memory_order_relaxed);
}

void Service::flush_reply_cache() {
  for (ReplyCacheStripe& stripe : reply_cache_stripes_) {
    const std::lock_guard lock(stripe.mutex);
    for (const auto& [key, entry] : stripe.map) {
      stripe.counters.evicted_entries += entry.replies.size();
    }
    stripe.counters.evicted_clients += stripe.map.size();
    reply_cache_clients_.fetch_sub(stripe.map.size(),
                                   std::memory_order_relaxed);
    stripe.map.clear();
  }
  reply_cache_loaded_.store(0, std::memory_order_relaxed);
}

void Service::evict_reply_cache_client(const ClientKey& excluded,
                                       bool want_tombstones) {
  // Phase 1: global LRU scan, one stripe locked at a time (eviction is
  // the rare overflow path; the request path never holds two stripes).
  bool found = false;
  ClientKey victim_key{};
  std::uint64_t victim_used = 0;
  std::size_t victim_stripe = 0;
  for (std::size_t s = 0; s < kReplyCacheStripes; ++s) {
    const ReplyCacheStripe& stripe = reply_cache_stripes_[s];
    const std::lock_guard lock(stripe.mutex);
    for (const auto& [key, entry] : stripe.map) {
      if (key == excluded || entry.replies.empty() != want_tombstones) {
        continue;
      }
      if (!want_tombstones && entry.executing != 0) {
        continue;
      }
      if (!found || entry.last_used < victim_used) {
        found = true;
        victim_key = key;
        victim_used = entry.last_used;
        victim_stripe = s;
      }
    }
  }
  if (!found) {
    return;
  }
  // Phase 2: re-lock the victim's stripe and re-verify eligibility (it
  // may have been touched between the scans; a stale pick is skipped and
  // the next overflow retries).
  ReplyCacheStripe& stripe = reply_cache_stripes_[victim_stripe];
  const std::lock_guard lock(stripe.mutex);
  const auto it = stripe.map.find(victim_key);
  if (it == stripe.map.end() ||
      it->second.replies.empty() != want_tombstones) {
    return;
  }
  ClientEntry& victim = it->second;
  if (want_tombstones) {
    // Tombstone pool bound: header.client is a self-chosen field, so an
    // id-churning peer must not grow the map without limit (see
    // PROTOCOL.md §5.4 for what erasing the floor forgets).
    ++stripe.counters.evicted_clients;
    stripe.map.erase(it);
    reply_cache_clients_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  if (victim.executing != 0) {
    return;
  }
  // Demotion drops the cached replies -- the heavy part -- but KEEPS the
  // entry as a floor tombstone, so duplicates of the evicted transactions
  // still drop silently instead of re-executing (the at-most-once
  // guarantee survives eviction; see docs/PROTOCOL.md §5.4).
  stripe.counters.evicted_entries += victim.replies.size();
  ++stripe.counters.evicted_clients;
  victim.floor = std::max(victim.floor, victim.replies.rbegin()->first);
  victim.replies.clear();
  reply_cache_loaded_.fetch_sub(1, std::memory_order_relaxed);
}

Service::DupVerdict Service::claim_request(const net::Delivery& request,
                                           net::Message& cached) {
  const ClientKey key{request.src.value(), request.message.header.client};
  const std::uint64_t seq = request.message.header.seq;
  if (reply_cache_window_.load(std::memory_order_relaxed) == 0) {
    return DupVerdict::fresh;  // suppression disabled: execute everything
  }
  const std::size_t max_clients =
      reply_cache_max_clients_.load(std::memory_order_relaxed);
  bool evict_tombstone = false;
  bool evict_client = false;
  DupVerdict verdict = DupVerdict::fresh;
  {
    ReplyCacheStripe& stripe = stripe_for(key);
    const std::lock_guard lock(stripe.mutex);
    const auto [self, created] = stripe.map.try_emplace(key);
    ClientEntry& entry = self->second;
    entry.last_used =
        reply_cache_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (created) {
      const std::size_t clients =
          reply_cache_clients_.fetch_add(1, std::memory_order_relaxed) + 1;
      evict_tombstone =
          max_clients != 0 && clients > kTombstoneFactor * max_clients;
    }
    // Replies are consulted BEFORE the floor: a reply body restored from
    // the volume after a restart sits at or below the recovered floor,
    // and must be re-sent, not dropped.
    if (const auto it = entry.replies.find(seq); it != entry.replies.end()) {
      ++stripe.counters.duplicates_suppressed;
      if (!it->second.done) {
        verdict = DupVerdict::drop;  // original still executing on a worker
      } else {
        ++stripe.counters.replies_resent;
        cached = it->second.reply;
        verdict = DupVerdict::resend;
      }
    } else if (seq <= entry.floor) {
      // Evicted region (or a pre-restart transaction whose floor was
      // recovered from the volume and whose body was not): the original
      // may or may not have executed, so the only at-most-once-safe
      // answer is silence (the client times out).
      ++stripe.counters.duplicates_suppressed;
      verdict = DupVerdict::drop;
    } else {
      if (entry.replies.empty()) {
        const std::size_t loaded =
            reply_cache_loaded_.fetch_add(1, std::memory_order_relaxed) + 1;
        evict_client = max_clients != 0 && loaded > max_clients;
      }
      entry.replies.emplace(seq, CachedReply{});  // claimed: executing
      ++entry.executing;
    }
  }
  // Global-limit enforcement runs OUTSIDE the stripe lock (the victim may
  // live on any stripe; two stripe locks are never held together).
  if (evict_tombstone) {
    evict_reply_cache_client(key, /*want_tombstones=*/true);
  }
  if (evict_client) {
    evict_reply_cache_client(key, /*want_tombstones=*/false);
  }
  return verdict;
}

void Service::store_reply(const net::Delivery& request,
                          const net::Message& reply) {
  const ClientKey key{request.src.value(), request.message.header.client};
  const std::uint64_t seq = request.message.header.seq;
  bool published = false;
  {
    ReplyCacheStripe& stripe = stripe_for(key);
    const std::lock_guard lock(stripe.mutex);
    const auto cit = stripe.map.find(key);
    if (cit == stripe.map.end()) {
      return;  // flushed or evicted while the handler ran
    }
    auto& entry = cit->second;
    const auto rit = entry.replies.find(seq);
    if (rit == entry.replies.end()) {
      return;
    }
    if (!rit->second.done && entry.executing > 0) {
      --entry.executing;
    }
    rit->second.done = true;
    rit->second.reply = reply;
    published = true;
    // Per-client window: age out the oldest COMPLETED transactions (an
    // executing one blocks the sweep; the window may briefly overshoot).
    const std::size_t window =
        reply_cache_window_.load(std::memory_order_relaxed);
    while (entry.replies.size() > window &&
           entry.replies.begin()->second.done) {
      entry.floor = std::max(entry.floor, entry.replies.begin()->first);
      entry.replies.erase(entry.replies.begin());
      ++stripe.counters.evicted_entries;
    }
  }
  if (published) {
    // Outside the stripe lock: the persisted image has its own mutex and
    // the two are never held together.
    persist_reply_body(key, seq, reply);
  }
}

// --------------------------------------------- durable restart (floors)

Buffer Service::encode_reply_floors_locked() const {
  Writer w;
  w.u32(kReplyMetaMagic);
  w.u32(static_cast<std::uint32_t>(reply_floors_.size()));
  for (const auto& [key, row] : reply_floors_) {
    w.u32(key.src);
    w.u64(key.client);
    w.u64(row.floor);
    w.u32(static_cast<std::uint32_t>(row.replies.size()));
    for (const auto& [seq, body] : row.replies) {
      w.u64(seq);
      w.bytes(body);
    }
  }
  return w.take();
}

Buffer Service::encode_reply_floors() const {
  const std::lock_guard lock(reply_floor_mutex_);
  return encode_reply_floors_locked();
}

void Service::restore_reply_floors(std::span<const std::uint8_t> floors) {
  if (floors.empty()) {
    return;
  }
  Reader r(floors);
  std::uint32_t count = r.u32();
  const bool with_bodies = count == kReplyMetaMagic;
  if (with_bodies) {
    count = r.u32();  // the magic-led image puts its row count second
  }
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ClientKey key{};
    key.src = r.u32();
    key.client = r.u64();
    const std::uint64_t floor = r.u64();
    std::vector<std::pair<std::uint64_t, Buffer>> bodies;
    if (with_bodies) {
      const std::uint32_t nbodies = r.u32();
      for (std::uint32_t b = 0; b < nbodies && r.ok(); ++b) {
        const std::uint64_t seq = r.u64();
        Buffer body = r.bytes();
        if (r.ok()) {
          bodies.emplace_back(seq, std::move(body));
        }
      }
    }
    if (!r.ok() || (floor == 0 && bodies.empty())) {
      continue;
    }
    {
      ReplyCacheStripe& stripe = stripe_for(key);
      const std::lock_guard lock(stripe.mutex);
      const auto [it, created] = stripe.map.try_emplace(key);
      ClientEntry& entry = it->second;
      entry.floor = std::max(entry.floor, floor);
      entry.last_used =
          reply_cache_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (created) {
        reply_cache_clients_.fetch_add(1, std::memory_order_relaxed);
      }
      const bool was_empty = entry.replies.empty();
      for (const auto& [seq, body] : bodies) {
        Reader body_reader(body);
        net::Message reply = decode_reply_body(body_reader, key.client, seq);
        if (!body_reader.ok()) {
          continue;  // malformed body: its duplicate drops via the floor
        }
        entry.replies.insert_or_assign(
            seq, CachedReply{/*done=*/true, std::move(reply)});
      }
      if (was_empty && !entry.replies.empty()) {
        reply_cache_loaded_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const std::lock_guard lock(reply_floor_mutex_);
    PersistedClient& row = reply_floors_[key];
    row.floor = std::max(row.floor, floor);
    for (auto& [seq, body] : bodies) {
      row.replies.insert_or_assign(seq, std::move(body));
    }
    while (row.replies.size() > kPersistedRepliesPerClient) {
      row.replies.erase(row.replies.begin());
    }
  }
}

void Service::persist_reply_floor(const ClientKey& key, std::uint64_t seq) {
  if (!reply_floor_sink_set_.load(std::memory_order_acquire)) {
    return;
  }
  std::function<std::uint64_t(Buffer)> sink;
  std::shared_ptr<storage::GroupCommitter> committer;
  {
    const std::lock_guard lock(filter_mutex_);
    sink = reply_floor_sink_;
    committer = reply_committer_;
  }
  if (!sink) {
    return;
  }
  std::uint64_t ticket = 0;
  {
    // One mutex covers update + encode + write: persists are totally
    // ordered, so a slower thread can never overwrite a newer image with
    // a stale one (the §8.4 never-twice ordering).
    const std::lock_guard lock(reply_floor_mutex_);
    PersistedClient& row = reply_floors_[key];
    row.floor = std::max(row.floor, seq);
    ticket = sink(encode_reply_floors_locked());
  }
  // The claimed seq must be durable BEFORE the handler can journal any
  // effect: a crash in between loses the operation, never doubles it.
  // The wait runs outside the mutex, so concurrent claims keep piling
  // their floors into the same flush cycle (the committer coalesces the
  // per-key images; the newest -- containing every row here -- wins).
  if (ticket != 0 && committer != nullptr) {
    committer->wait_durable(ticket);
  }
}

void Service::persist_reply_body(const ClientKey& key, std::uint64_t seq,
                                 const net::Message& reply) {
  if (!reply_floor_sink_set_.load(std::memory_order_acquire)) {
    return;
  }
  if (reply.data.size() > kPersistedReplyMaxBytes) {
    return;  // too big for the rewritten-whole metadata image
  }
  std::function<std::uint64_t(Buffer)> sink;
  {
    const std::lock_guard lock(filter_mutex_);
    sink = reply_floor_sink_;
  }
  if (!sink) {
    return;
  }
  Writer body;
  encode_reply_body(reply, body);
  const std::lock_guard lock(reply_floor_mutex_);
  PersistedClient& row = reply_floors_[key];
  row.replies.insert_or_assign(seq, body.take());
  while (row.replies.size() > kPersistedRepliesPerClient) {
    row.replies.erase(row.replies.begin());
  }
  // Best effort: no durability wait (see the header comment) -- the
  // enqueue rides whatever flush cycle comes next.
  (void)sink(encode_reply_floors_locked());
}

void Service::set_info_detail(std::function<std::string()> provider) {
  const std::lock_guard lock(info_detail_mutex_);
  info_detail_ = std::move(provider);
}

std::string Service::info_detail() const {
  std::function<std::string()> provider;
  {
    const std::lock_guard lock(info_detail_mutex_);
    provider = info_detail_;
  }
  return provider != nullptr ? provider() : std::string("role=standalone");
}

void Service::attach_durability(std::shared_ptr<storage::Backend> backend) {
  attach_durability(std::move(backend), nullptr);
}

void Service::attach_durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return;
  }
  // A replicated volume makes this service a replication primary: publish
  // the role, peer count and shipping lag through std_info's detail line
  // (docs/PROTOCOL.md §9.5).  A group committer likewise publishes its
  // flush-pipeline counters (docs/PROTOCOL.md §8.5) -- under an async
  // backend these are the observable proof that submissions are riding the
  // ring (gc.sqe grows) rather than blocking the flusher.  The shared_ptrs
  // keep the decorator/committer alive as long as the provider.
  const auto replicated =
      std::dynamic_pointer_cast<storage::ReplicatedBackend>(backend);
  if (replicated != nullptr || committer != nullptr) {
    set_info_detail([replicated, committer] {
      std::string line;
      if (replicated != nullptr) {
        replicated->heartbeat();  // refresh acked floors before reporting
        const storage::ReplicatedBackend::Stats stats = replicated->stats();
        line = "role=primary mode=";
        line += to_string(stats.mode);
        line += " peers=" + std::to_string(stats.peers.size());
        line += " shipped=" + std::to_string(stats.shipped_lsn);
        for (const auto& peer : stats.peers) {
          line += " " + peer.name +
                  ".lag=" + std::to_string(stats.shipped_lsn - peer.acked_lsn);
        }
      } else {
        line = "role=standalone";
      }
      if (committer != nullptr) {
        const storage::GroupCommitter::Stats gc = committer->stats();
        line += " gc.groups=" + std::to_string(gc.groups);
        line += " gc.inflight=" + std::to_string(gc.inflight_cycles);
        line += " gc.sqe=" + std::to_string(gc.sqe_submitted);
        line += " gc.cqe=" + std::to_string(gc.cqe_completed);
        line += " gc.linger_us=" + std::to_string(gc.linger_us_current);
      }
      return line;
    });
  }
  restore_reply_floors(backend->get_meta(kReplyFloorsKey));
  {
    const std::lock_guard lock(filter_mutex_);
    reply_committer_ = committer;
    if (committer != nullptr) {
      reply_floor_sink_ = [committer](Buffer image) {
        return committer->enqueue_meta(kReplyFloorsKey, std::move(image));
      };
    } else {
      reply_floor_sink_ = [backend =
                               std::move(backend)](const Buffer& image) {
        backend->put_meta(kReplyFloorsKey, image);
        return std::uint64_t{0};  // synchronous: already durable
      };
    }
  }
  reply_floor_sink_set_.store(true, std::memory_order_release);
}

net::Message Service::handle(const net::Delivery& request) {
  // The table is frozen once workers run (on() rejects late registration),
  // so this lookup is lock-free and race-free.
  const auto it = handlers_.find(request.message.header.opcode);
  if (it == handlers_.end()) {
    return net::make_reply(request.message, ErrorCode::no_such_operation);
  }
  return it->second(request);
}

net::Message Service::handle_one(const net::Delivery& request) {
  // Per-op metrics: the map is frozen at start(), so the lookup is
  // lock-free; only typed ops (registered through note_op) are timed.
  OpMetrics* metrics = nullptr;
  if (const auto it = op_metrics_.find(request.message.header.opcode);
      it != op_metrics_.end()) {
    metrics = it->second.get();
  }
  const auto started = metrics != nullptr
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  net::Message reply;
  try {
    reply = handle(request);
  } catch (const std::exception&) {
    // A handler failure (bad_alloc on an oversized request, a violated
    // precondition) must not take the whole service process down; the
    // offending client gets the invariant-failure status instead.
    reply = net::make_reply(request.message, ErrorCode::internal);
  }
  if (metrics != nullptr) {
    const auto elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    metrics->calls.fetch_add(1, std::memory_order_relaxed);
    if (reply.header.status != ErrorCode::ok) {
      metrics->errors.fetch_add(1, std::memory_order_relaxed);
    }
    metrics->total_us.fetch_add(elapsed_us, std::memory_order_relaxed);
    std::uint64_t seen = metrics->max_us.load(std::memory_order_relaxed);
    while (elapsed_us > seen &&
           !metrics->max_us.compare_exchange_weak(
               seen, elapsed_us, std::memory_order_relaxed)) {
    }
  }
  return reply;
}

net::Message Service::handle_batch(const net::Delivery& request) {
  auto subs = decode_batch_request(request.message.data);
  if (!subs.has_value()) {
    return net::make_reply(request.message, ErrorCode::invalid_argument);
  }
  batched_requests_.fetch_add(subs->size(), std::memory_order_relaxed);
  std::vector<BatchReply> replies(subs->size());
  const auto process = [&](std::size_t i) {
    BatchRequest& sub = (*subs)[i];
    net::Delivery sub_request;
    sub_request.src = request.src;
    sub_request.message.header.dest = request.message.header.dest;
    sub_request.message.header.opcode = sub.opcode;
    sub_request.message.header.signature = request.message.header.signature;
    sub_request.message.header.capability = sub.capability;
    sub_request.message.header.params = sub.params;
    sub_request.message.data = std::move(sub.data);
    net::Message sub_reply;
    if (sub.opcode == kBatchOpcode) {
      // No nested envelopes: unbounded recursion for no amortization win.
      sub_reply =
          net::make_reply(sub_request.message, ErrorCode::invalid_argument);
    } else {
      sub_reply = handle_one(sub_request);
    }
    replies[i] = BatchReply{sub_reply.header.status,
                            sub_reply.header.capability,
                            sub_reply.header.params,
                            std::move(sub_reply.data)};
  };
  const std::size_t fan_out =
      std::min<std::size_t>(
          static_cast<std::size_t>(
              batch_fan_out_.load(std::memory_order_relaxed)),
          subs->size());
  if (fan_out <= 1) {
    for (std::size_t i = 0; i < subs->size(); ++i) {
      process(i);
    }
  } else {
    // Strided fan-out across transient helpers; handlers are already safe
    // under multi-worker concurrency, so this adds parallelism, not risk.
    std::vector<std::jthread> helpers;
    helpers.reserve(fan_out);
    for (std::size_t h = 0; h < fan_out; ++h) {
      helpers.emplace_back([&, h] {
        for (std::size_t i = h; i < replies.size(); i += fan_out) {
          process(i);
        }
      });
    }
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.flags |= net::kFlagBatch;
  reply.data = encode_batch(replies);
  return reply;
}

void Service::run(std::stop_token stop, std::latch& ready) {
  // GET(G): the registration lives on this worker's stack, so a stopping
  // worker withdraws its F-box registration on exit.
  net::Receiver receiver = machine_->listen(get_port_);
  ready.count_down();
  while (!stop.stop_requested()) {
    auto delivery = receiver.receive(stop);
    if (!delivery.has_value()) {
      break;  // stop requested or mailbox closed
    }
    std::shared_ptr<MessageFilter> filter;
    std::vector<Port> allowed_signatures;
    {
      const std::lock_guard lock(filter_mutex_);
      filter = filter_;
      allowed_signatures = allowed_signatures_;
    }
    net::Message reply;
    bool executed = true;      // false: duplicate answered from the cache
    bool cache_reply = false;  // true: claimed fresh, publish after handling
    if (!allowed_signatures.empty() &&
        std::find(allowed_signatures.begin(), allowed_signatures.end(),
                  delivery->message.header.signature) ==
            allowed_signatures.end()) {
      // Sender authentication (§2.2): only the true owner of S can make
      // the published F(S) appear here -- his F-box computes it from the
      // secret; an intruder submitting the observed F(S) ends up with
      // F(F(S)) on the wire.
      reply = net::make_reply(delivery->message, ErrorCode::permission_denied);
    } else if (filter != nullptr &&
               !filter->incoming(delivery->message, delivery->src)) {
      reply = net::make_reply(delivery->message, ErrorCode::unsealing_failed);
    } else {
      // Duplicate suppression runs after the signature and filter gates:
      // a frame replayed from the wrong machine can neither poison nor
      // read the cache (and the cache is keyed by the stamped source
      // machine on top of that).
      // seq 0 is malformed under the spec (sequences start at 1); such a
      // frame is served WITHOUT at-most-once semantics rather than
      // swallowed by the floor check.
      const bool at_most_once =
          (delivery->message.header.flags & net::kFlagAtMostOnce) != 0 &&
          delivery->message.header.client != 0 &&
          delivery->message.header.seq != 0;
      if (at_most_once) {
        switch (claim_request(*delivery, reply)) {
          case DupVerdict::drop:
            continue;  // executing elsewhere or evicted: say nothing
          case DupVerdict::resend:
            executed = false;  // cached reply already copied into `reply`
            break;
          case DupVerdict::fresh:
            cache_reply = true;
            // Write-ahead for the suppression state: the claimed seq is
            // durable (as a floor) BEFORE the handler can journal any
            // effect, so a crash can lose this operation but a restarted
            // server can never run its duplicate a second time.
            try {
              persist_reply_floor(
                  ClientKey{delivery->src.value(),
                            delivery->message.header.client},
                  delivery->message.header.seq);
            } catch (const std::exception&) {
              // The volume refused durability -- a failed flush, or a
              // fenced deposed primary (§9.4).  Without a durable floor
              // the operation must not execute; the client hears the
              // truth instead of the worker thread dying.
              reply = net::make_reply(delivery->message, ErrorCode::internal);
              executed = false;
              cache_reply = false;
            }
            break;
        }
      }
      if (executed) {
        reply = delivery->message.header.opcode == kBatchOpcode
                    ? handle_batch(*delivery)
                    : handle_one(*delivery);
        if (cache_reply) {
          // Cached in pre-dest, pre-filter form; a re-send recomputes the
          // destination from the duplicate and re-seals per transmission.
          store_reply(*delivery, reply);
        }
      }
    }
    if (executed) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    const Port reply_port = delivery->message.header.reply;
    if (reply_port.is_null()) {
      continue;  // one-way request
    }
    reply.header.dest = reply_port;
    reply.header.opcode = delivery->message.header.opcode;
    if (filter != nullptr) {
      filter->outgoing(reply, delivery->src);
    }
    // Reply straight to the stamped source machine; no locate needed.
    machine_->transmit(std::move(reply), delivery->src);
  }
}

}  // namespace amoeba::rpc
