#include "amoeba/rpc/typed.hpp"

namespace amoeba::rpc {
namespace detail {

net::Message decode_error_reply(const net::Delivery& request,
                                const char* op_name) {
  net::Message reply =
      net::make_reply(request.message, ErrorCode::invalid_argument);
  // The diagnostic rides in the data field; clients that only look at the
  // status see plain invalid_argument, debugging clients get the op name.
  Writer w;
  w.str(std::string(op_name) + ": request body malformed (" +
        to_string(ErrorCode::invalid_argument) + ")");
  reply.data = w.take();
  return reply;
}

}  // namespace detail

Result<TypedBatch::Replies> TypedBatch::run() {
  auto raw = batch_.run();
  if (!raw.ok()) {
    return raw.error();
  }
  Replies replies;
  replies.entries_ = std::move(raw.value());
  return replies;
}

Result<TypedBatch::Replies> TypedBatch::run(
    std::chrono::milliseconds timeout) {
  auto raw = batch_.run(timeout);
  if (!raw.ok()) {
    return raw.error();
  }
  Replies replies;
  replies.entries_ = std::move(raw.value());
  return replies;
}

Result<TypedBatch::Replies> TypedBatch::parse_reply(
    Result<net::Delivery> delivery) {
  auto raw = Batch::parse_reply(std::move(delivery));
  if (!raw.ok()) {
    return raw.error();
  }
  Replies replies;
  replies.entries_ = std::move(raw.value());
  return replies;
}

}  // namespace amoeba::rpc
