#include "amoeba/rpc/batch.hpp"

namespace amoeba::rpc {
namespace {

template <typename Entry>
void encode_entry_head(Writer& w, const Entry& entry, std::uint16_t head) {
  w.u16(head);
  w.raw(entry.capability);
  for (const auto p : entry.params) {
    w.u64(p);
  }
  w.bytes(entry.data);
}

/// Shared decode shape for both directions; the only difference is what
/// the leading u16 of each entry means.
template <typename Entry, typename HeadFn>
std::optional<std::vector<Entry>> decode_with(
    std::span<const std::uint8_t> data, HeadFn&& set_head) {
  Reader r(data);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxBatchEntries) {
    return std::nullopt;
  }
  std::vector<Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    set_head(entry, r.u16());
    r.raw(entry.capability);
    for (auto& p : entry.params) {
      p = r.u64();
    }
    entry.data = r.bytes();
    if (!r.ok()) {
      return std::nullopt;
    }
    entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    return std::nullopt;  // trailing garbage
  }
  return entries;
}

}  // namespace

Buffer encode_batch(std::span<const BatchRequest> entries) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    encode_entry_head(w, entry, entry.opcode);
  }
  return w.take();
}

Buffer encode_batch(std::span<const BatchReply> entries) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    encode_entry_head(w, entry, static_cast<std::uint16_t>(entry.status));
  }
  return w.take();
}

std::optional<std::vector<BatchRequest>> decode_batch_request(
    std::span<const std::uint8_t> data) {
  return decode_with<BatchRequest>(
      data, [](BatchRequest& e, std::uint16_t head) { e.opcode = head; });
}

std::optional<std::vector<BatchReply>> decode_batch_reply(
    std::span<const std::uint8_t> data) {
  return decode_with<BatchReply>(data, [](BatchReply& e, std::uint16_t head) {
    e.status = static_cast<ErrorCode>(head);
  });
}

// -------------------------------------------------------------------- Batch

std::size_t Batch::add(std::uint16_t opcode,
                       const net::CapabilityBytes* capability, Buffer data,
                       std::array<std::uint64_t, 4> params) {
  if (entries_.size() >= kMaxBatchEntries) {
    throw UsageError("Batch::add: kMaxBatchEntries exceeded");
  }
  BatchRequest entry;
  entry.opcode = opcode;
  if (capability != nullptr) {
    entry.capability = *capability;
  }
  entry.params = params;
  entry.data = std::move(data);
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

net::Message Batch::build() {
  net::Message request;
  request.header.dest = dest_;
  request.header.opcode = kBatchOpcode;
  request.header.flags |= net::kFlagBatch;
  request.data = encode_batch(entries_);
  entries_.clear();
  return request;
}

Result<std::vector<BatchReply>> Batch::run() {
  return run(transport_->default_timeout());
}

Result<std::vector<BatchReply>> Batch::run(std::chrono::milliseconds timeout) {
  if (entries_.empty()) {
    return std::vector<BatchReply>{};
  }
  const std::size_t expected = entries_.size();
  auto replies = parse_reply(transport_->trans(build(), timeout));
  if (replies.ok() && replies.value().size() != expected) {
    // A truncated or padded reply envelope must not reach callers that
    // index replies by add() position.
    return ErrorCode::internal;
  }
  return replies;
}

Future Batch::run_async() { return run_async(transport_->default_timeout()); }

Future Batch::run_async(std::chrono::milliseconds timeout) {
  if (entries_.empty()) {
    return Future();
  }
  return transport_->trans_async(build(), timeout);
}

Result<std::vector<BatchReply>> Batch::parse_reply(
    Result<net::Delivery> delivery) {
  if (!delivery.ok()) {
    return delivery.error();
  }
  const net::Message& reply = delivery.value().message;
  if (reply.header.status != ErrorCode::ok) {
    return reply.header.status;  // envelope-level failure
  }
  auto entries = decode_batch_reply(reply.data);
  if (!entries.has_value()) {
    return ErrorCode::internal;  // malformed reply envelope
  }
  return std::move(*entries);
}

}  // namespace amoeba::rpc
