#include "amoeba/rpc/transport.hpp"

namespace amoeba::rpc {

Transport::Transport(net::Machine& machine, std::uint64_t seed)
    : machine_(machine), rng_(seed ^ machine.id().value()) {}

void Transport::set_signature(Port signature_get_port) {
  const std::lock_guard lock(mutex_);
  signature_ = signature_get_port;
}

void Transport::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(mutex_);
  filter_ = std::move(filter);
}

Transport::Stats Transport::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

void Transport::flush_cache() {
  const std::lock_guard lock(mutex_);
  cache_.clear();
}

std::optional<MachineId> Transport::resolve(Port put_port) {
  {
    const std::lock_guard lock(mutex_);
    auto it = cache_.find(put_port);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
    ++stats_.cache_misses;
  }
  const auto located = machine_.locate(put_port);
  if (located.has_value()) {
    const std::lock_guard lock(mutex_);
    cache_[put_port] = *located;
  }
  return located;
}

void Transport::invalidate(Port put_port) {
  const std::lock_guard lock(mutex_);
  cache_.erase(put_port);
  ++stats_.cache_invalidations;
}

Result<net::Delivery> Transport::trans(net::Message request,
                                       std::chrono::milliseconds timeout,
                                       std::stop_token stop) {
  Port reply_get_port;
  {
    const std::lock_guard lock(mutex_);
    ++stats_.transactions;
    reply_get_port = Port(rng_.bits(Port::kBits));
    request.header.signature = signature_;
  }
  // One-shot reply registration; destroyed (and the port forgotten) when
  // this call returns.
  net::Receiver reply_receiver = machine_.listen(reply_get_port);
  request.header.reply = reply_get_port;

  std::shared_ptr<MessageFilter> filter;
  {
    const std::lock_guard lock(mutex_);
    filter = filter_;
  }

  // Two attempts: a stale cache entry (server migrated/died) costs one
  // rejected transmit, an invalidation, and a fresh LOCATE.
  bool sent = false;
  for (int attempt = 0; attempt < 2 && !sent; ++attempt) {
    const auto dst = resolve(request.header.dest);
    if (!dst.has_value()) {
      return ErrorCode::no_such_port;
    }
    // Seal a copy: a retry to a different machine must re-seal the
    // original, not the already-sealed bytes.
    net::Message wire = request;
    if (filter != nullptr) {
      filter->outgoing(wire, *dst);
    }
    sent = machine_.transmit(std::move(wire), *dst);
    if (!sent) {
      invalidate(request.header.dest);
    }
  }
  if (!sent) {
    return ErrorCode::no_such_port;
  }

  auto delivery = reply_receiver.receive(stop, timeout);
  if (!delivery.has_value()) {
    const std::lock_guard lock(mutex_);
    ++stats_.timeouts;
    return ErrorCode::timeout;
  }
  if (filter != nullptr &&
      !filter->incoming(delivery->message, delivery->src)) {
    return ErrorCode::unsealing_failed;
  }
  return std::move(*delivery);
}

}  // namespace amoeba::rpc
