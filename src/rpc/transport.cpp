#include "amoeba/rpc/transport.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

namespace amoeba::rpc {

using Clock = std::chrono::steady_clock;

namespace {
/// Process-wide transport nonce.  Server reply caches key on
/// (machine, client id), so two transports must never share an id --
/// including a transport recreated with the SAME machine and seed (the
/// RNG alone would then reproduce the old id and the old seq stream, and
/// a surviving server would answer the new transport's first transactions
/// from the old one's cached replies).  The counter makes ids distinct by
/// construction; the RNG spreads them.
std::atomic<std::uint64_t> next_transport_nonce{1};
}  // namespace

// ------------------------------------------------------------------- Future

bool Future::ready() const {
  if (state_ == nullptr) {
    return false;
  }
  const std::lock_guard lock(state_->mutex);
  return state_->outcome.has_value();
}

Result<net::Delivery> Future::get(std::stop_token stop) {
  if (state_ == nullptr) {
    throw UsageError("Future::get: invalid (empty or already consumed)");
  }
  const auto state = std::move(state_);
  std::unique_lock lock(state->mutex);
  if (!state->cv.wait(lock, stop,
                      [&] { return state->outcome.has_value(); })) {
    return ErrorCode::timeout;  // stop requested before completion
  }
  return std::move(*state->outcome);
}

bool Future::wait_for(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) {
    return false;
  }
  std::unique_lock lock(state_->mutex);
  return state_->cv.wait_for(lock, timeout,
                             [&] { return state_->outcome.has_value(); });
}

// ---------------------------------------------------------------- Transport

Transport::Transport(net::Machine& machine, std::uint64_t seed)
    : machine_(machine),
      rng_(seed ^ machine.id().value()),
      replies_(std::make_shared<net::Mailbox>()),
      pump_wakes_at_(Clock::time_point::max()),
      pump_([this](std::stop_token st) { pump(st); }) {
  // The at-most-once client identity: nonzero (0 on the wire means "no
  // at-most-once semantics"), unique among all transports of this process
  // by the nonce, randomly spread by the seed.  Splitmix's odd constant
  // keeps distinct nonces distinct after the multiply.
  const std::uint64_t nonce =
      next_transport_nonce.fetch_add(1, std::memory_order_relaxed);
  do {
    client_id_ = rng_.bits(64) ^ (nonce * 0x9E3779B97F4A7C15ull);
  } while (client_id_ == 0);
}

Transport::~Transport() {
  pump_.request_stop();
  replies_->close();  // wakes the pump even mid-pop
  pump_.join();
  // Fail whatever is still in flight so no Future::get blocks forever.
  std::vector<Pending> leftovers;
  {
    const std::lock_guard lock(pending_mutex_);
    leftovers.reserve(pending_.size());
    for (auto& [port, pending] : pending_) {
      leftovers.push_back(std::move(pending));
    }
    pending_.clear();
  }
  for (auto& pending : leftovers) {
    complete(pending, ErrorCode::timeout);
  }
}

void Transport::set_retransmit(std::chrono::milliseconds initial,
                               std::chrono::milliseconds cap) {
  if (initial.count() < 0 || cap < initial) {
    throw UsageError("Transport::set_retransmit: need 0 <= initial <= cap");
  }
  retransmit_initial_ms_.store(initial.count(), std::memory_order_relaxed);
  retransmit_cap_ms_.store(cap.count(), std::memory_order_relaxed);
}

void Transport::set_signature(Port signature_get_port) {
  const std::lock_guard lock(mutex_);
  signature_ = signature_get_port;
}

void Transport::set_filter(std::shared_ptr<MessageFilter> filter) {
  const std::lock_guard lock(mutex_);
  filter_ = std::move(filter);
}

std::chrono::milliseconds Transport::adaptive_rto_locked() const {
  const auto floor = retransmit_initial();
  if (floor.count() == 0 || stats_.rtt_samples == 0) {
    return floor;  // disabled, or no sample yet: the configured seed
  }
  const std::uint64_t rto_us = stats_.srtt_us + 4 * stats_.rttvar_us;
  const auto rto = std::chrono::milliseconds((rto_us + 999) / 1000);
  return std::clamp(rto, floor, retransmit_cap());
}

void Transport::record_rtt_locked(std::chrono::microseconds sample) {
  // Jacobson/Karels in integer microseconds: srtt += err/8,
  // rttvar += (|err| - rttvar)/4.
  const auto us = static_cast<std::int64_t>(sample.count());
  auto srtt = static_cast<std::int64_t>(stats_.srtt_us);
  auto rttvar = static_cast<std::int64_t>(stats_.rttvar_us);
  if (stats_.rtt_samples == 0) {
    srtt = us;
    rttvar = us / 2;
  } else {
    const std::int64_t err = us - srtt;
    srtt += err / 8;
    rttvar += (std::abs(err) - rttvar) / 4;
  }
  stats_.srtt_us = static_cast<std::uint64_t>(std::max<std::int64_t>(srtt, 0));
  stats_.rttvar_us =
      static_cast<std::uint64_t>(std::max<std::int64_t>(rttvar, 0));
  ++stats_.rtt_samples;
}

Transport::Stats Transport::stats() const {
  const std::lock_guard lock(mutex_);
  Stats snapshot = stats_;
  snapshot.rto_ms =
      static_cast<std::uint64_t>(adaptive_rto_locked().count());
  return snapshot;
}

std::size_t Transport::in_flight() const {
  const std::lock_guard lock(pending_mutex_);
  return pending_.size();
}

void Transport::flush_cache() {
  const std::lock_guard lock(mutex_);
  cache_.clear();
}

std::optional<Transport::CacheEntry> Transport::resolve(Port put_port) {
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = cache_.find(put_port);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
    if (!locating_.contains(put_port)) {
      break;
    }
    // Single-flight: another thread is already broadcasting a LOCATE for
    // this port; ride its answer instead of adding to the storm.
    locate_cv_.wait(lock);
  }
  ++stats_.cache_misses;
  locating_.insert(put_port);
  lock.unlock();
  const auto located = machine_.locate(put_port);
  lock.lock();
  locating_.erase(put_port);
  std::optional<CacheEntry> result;
  if (located.has_value()) {
    const CacheEntry entry{*located, ++next_generation_};
    cache_[put_port] = entry;
    result = entry;
  }
  locate_cv_.notify_all();
  return result;
}

void Transport::invalidate(Port put_port, std::uint64_t generation) {
  const std::lock_guard lock(mutex_);
  auto it = cache_.find(put_port);
  // Generation guard: when many in-flight transactions resolved through
  // one stale entry, only the first rejected frame evicts it; the rest
  // find a newer (or absent) entry and simply re-resolve.
  if (it != cache_.end() && it->second.generation == generation) {
    cache_.erase(it);
    ++stats_.cache_invalidations;
  }
}

Future Transport::trans_async(net::Message request,
                              std::chrono::milliseconds timeout) {
  auto state = std::make_shared<Future::State>();
  Future future(state);

  // One lock hold covers the per-transaction bookkeeping: stats, the
  // signature/filter snapshot, the at-most-once (client, seq) stamp, the
  // one-shot port draw, and a fast-path probe of the location cache (the
  // hot path never takes mutex_ twice).
  std::shared_ptr<MessageFilter> filter;
  Port reply_get_port;
  std::optional<CacheEntry> fast_dst;
  std::chrono::milliseconds backoff{0};
  {
    const std::lock_guard lock(mutex_);
    ++stats_.transactions;
    filter = filter_;
    request.header.signature = signature_;
    request.header.client = client_id_;
    request.header.seq = ++next_seq_;
    request.header.flags |= net::kFlagAtMostOnce;
    // RTT-seeded first-retransmit interval (floor = configured initial).
    backoff = adaptive_rto_locked();
    do {
      reply_get_port = Port(rng_.bits(Port::kBits));
    } while (reply_get_port.is_null());
    auto it = cache_.find(request.header.dest);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      fast_dst = it->second;
    }
  }

  // One-shot reply registration, demultiplexed through the shared
  // mailbox.  Registered in the completion registry BEFORE the frame goes
  // out, so a reply cannot beat its own bookkeeping.
  const auto now = Clock::now();
  const auto deadline = now + timeout;
  const auto next_send =
      backoff.count() > 0 ? now + backoff : Clock::time_point::max();
  Port registry_key;
  bool registered = false;
  bool wake_pump = false;
  for (int attempt = 0; attempt < 4 && !registered; ++attempt) {
    if (attempt > 0) {
      const std::lock_guard lock(mutex_);
      do {
        reply_get_port = Port(rng_.bits(Port::kBits));
      } while (reply_get_port.is_null());
    }
    net::Receiver receiver = machine_.listen(reply_get_port, replies_);
    registry_key = receiver.put_port();
    if (registry_key.is_null()) {
      continue;  // F(G') == 0 would masquerade as a wake marker: redraw
    }
    request.header.reply = reply_get_port;  // final once registered
    Pending pending{state,     std::move(receiver), deadline, {},
                    next_send, backoff,             now,      false};
    if (backoff.count() > 0) {
      pending.request = request;  // the copy the pump retransmits from
    }
    const std::lock_guard lock(pending_mutex_);
    if (pending_.contains(registry_key)) {
      continue;  // 2^-48 one-shot port collision: redraw
    }
    pending_.emplace(registry_key, std::move(pending));
    // Only an event earlier than the pump's next scheduled wake needs a
    // nudge; later ones are picked up when it recomputes anyway.
    const auto wake_at = std::min(deadline, next_send);
    wake_pump = wake_at < pump_wakes_at_;
    if (wake_pump) {
      pump_wakes_at_ = wake_at;
    }
    registered = true;
  }
  if (!registered) {
    Pending failed{state, net::Receiver(),          deadline, {},
                   Clock::time_point::max(), {},    now,      false};
    complete(failed, ErrorCode::internal);
    return future;
  }
  if (wake_pump) {
    // Wake marker: a null-dest delivery the pump discards after
    // recomputing its deadline.
    replies_->push(net::Delivery{MachineId(), net::Message{}});
  }

  const bool sent = send_request(request, filter, std::move(fast_dst));
  if (!sent) {
    // The reply can never come: withdraw the registration (unless the
    // pump already expired it) and fail the future now.
    std::optional<Pending> pending;
    {
      const std::lock_guard lock(pending_mutex_);
      auto it = pending_.find(registry_key);
      if (it != pending_.end()) {
        pending.emplace(std::move(it->second));
        pending_.erase(it);
      }
    }
    if (pending.has_value()) {
      complete(*pending, ErrorCode::no_such_port);
    }
  }
  return future;
}

bool Transport::send_request(const net::Message& request,
                             const std::shared_ptr<MessageFilter>& filter,
                             std::optional<CacheEntry> fast_dst) {
  // Two attempts: a stale cache entry (server migrated/died) costs one
  // rejected transmit, one invalidation, and a fresh LOCATE.
  bool sent = false;
  for (int attempt = 0; attempt < 2 && !sent; ++attempt) {
    const auto dst = fast_dst.has_value() ? std::exchange(fast_dst, {})
                                          : resolve(request.header.dest);
    if (!dst.has_value()) {
      break;
    }
    // Seal a copy: a retry to a different machine must re-seal the
    // original, not the already-sealed bytes.
    net::Message wire = request;
    if (filter != nullptr) {
      filter->outgoing(wire, dst->machine);
    }
    sent = machine_.transmit(std::move(wire), dst->machine);
    if (!sent) {
      invalidate(request.header.dest, dst->generation);
    }
  }
  return sent;
}

void Transport::complete(Pending& pending, Result<net::Delivery> outcome) {
  {
    const std::lock_guard lock(pending.state->mutex);
    pending.state->outcome.emplace(std::move(outcome));
  }
  pending.state->cv.notify_all();
}

void Transport::settle_all(std::deque<net::Delivery>&& batch) {
  // One registry lock reaps every matching transaction of the batch;
  // futures complete (and the one-shot GET registrations die) outside it.
  std::vector<std::pair<Pending, net::Delivery>> matched;
  matched.reserve(batch.size());
  {
    const std::lock_guard lock(pending_mutex_);
    for (auto& delivery : batch) {
      if (delivery.message.header.dest.is_null()) {
        continue;  // wake marker from trans_async
      }
      auto it = pending_.find(delivery.message.header.dest);
      if (it == pending_.end()) {
        continue;  // duplicate frame or post-timeout straggler: dropped
      }
      matched.emplace_back(std::move(it->second), std::move(delivery));
      pending_.erase(it);
    }
  }
  if (matched.empty()) {
    return;
  }
  std::shared_ptr<MessageFilter> filter;
  {
    const auto now = Clock::now();
    const std::lock_guard lock(mutex_);
    filter = filter_;
    for (const auto& [pending, delivery] : matched) {
      // Karn's rule: only transactions answered without any retransmit
      // contribute RTT samples (a retransmitted one's reply is ambiguous).
      if (!pending.retransmitted &&
          pending.issued_at != Clock::time_point{}) {
        record_rtt_locked(std::chrono::duration_cast<std::chrono::microseconds>(
            now - pending.issued_at));
      }
    }
  }
  for (auto& [pending, delivery] : matched) {
    if (filter != nullptr &&
        !filter->incoming(delivery.message, delivery.src)) {
      complete(pending, ErrorCode::unsealing_failed);
    } else {
      complete(pending, std::move(delivery));
    }
  }
  // ~matched here withdraws the one-shot GET registrations.
}

void Transport::expire_and_retransmit() {
  // The only full registry scan in the pump; it runs when a deadline or
  // retransmit timer actually fires (or a wake marker moved the schedule),
  // never per reply.  It also recomputes the next wake time, repairing the
  // staleness settle() leaves behind (pump_wakes_at_ only ever errs early,
  // so the worst case is one spurious wake, not a missed timeout).
  const auto now = Clock::now();
  const auto cap = retransmit_cap();
  std::vector<Pending> overdue;
  std::vector<net::Message> resend;
  {
    const std::lock_guard lock(pending_mutex_);
    auto earliest = Clock::time_point::max();
    for (auto it = pending_.begin(); it != pending_.end();) {
      Pending& pending = it->second;
      if (pending.deadline <= now) {
        overdue.push_back(std::move(pending));
        it = pending_.erase(it);
        continue;
      }
      if (pending.next_send <= now) {
        // Unacknowledged past its backoff: queue another copy (flagged as
        // a retransmission) and double the interval, capped.
        net::Message copy = pending.request;
        copy.header.flags |= net::kFlagRetransmit;
        resend.push_back(std::move(copy));
        pending.retransmitted = true;  // Karn: its reply yields no sample
        pending.backoff = std::min(pending.backoff * 2, cap);
        pending.next_send = now + pending.backoff;
      }
      earliest =
          std::min(earliest, std::min(pending.deadline, pending.next_send));
      ++it;
    }
    pump_wakes_at_ = earliest;
  }
  if (!overdue.empty()) {
    {
      const std::lock_guard lock(mutex_);
      stats_.timeouts += overdue.size();
    }
    for (auto& pending : overdue) {
      complete(pending, ErrorCode::timeout);
    }
  }
  if (!resend.empty()) {
    std::shared_ptr<MessageFilter> filter;
    {
      const std::lock_guard lock(mutex_);
      filter = filter_;
      stats_.retransmits += resend.size();
    }
    for (const auto& request : resend) {
      // Best effort: a rejected retransmit (server mid-migration) is not
      // a failure -- the next backoff tick or the deadline settles it.
      (void)send_request(request, filter, std::nullopt);
    }
  }
}

void Transport::pump(std::stop_token stop) {
  while (!stop.stop_requested()) {
    std::optional<std::chrono::milliseconds> wait;
    {
      const std::lock_guard lock(pending_mutex_);
      if (pump_wakes_at_ != Clock::time_point::max()) {
        wait = std::max(std::chrono::milliseconds(1),
                        std::chrono::ceil<std::chrono::milliseconds>(
                            pump_wakes_at_ - Clock::now()));
      }
    }
    auto batch = replies_->drain(stop, wait);
    if (stop.stop_requested() || replies_->closed()) {
      return;
    }
    if (batch.empty()) {
      expire_and_retransmit();  // deadline / backoff tick
      continue;
    }
    settle_all(std::move(batch));
    // Continuous reply traffic must not starve deadlines: a lost frame's
    // transaction still has to time out while its neighbours settle.
    bool deadline_passed;
    {
      const std::lock_guard lock(pending_mutex_);
      deadline_passed = pump_wakes_at_ <= Clock::now();
    }
    if (deadline_passed) {
      expire_and_retransmit();
    }
  }
}

}  // namespace amoeba::rpc
