// Tests for the capability-based UNIX file system (§3.5, "the third file
// system"): the POSIX-flavoured facade over directory + flat file servers.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/unixfs.hpp"

namespace amoeba::servers {
namespace {

Buffer bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

std::string text(const Buffer& b) { return std::string(b.begin(), b.end()); }

class UnixFsSuite : public ::testing::Test {
 protected:
  UnixFsSuite()
      : host_(net_.add_machine("servers")),
        user_(net_.add_machine("user")),
        rng_(61) {
    const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng_);
    BlockServer::Geometry geometry;
    geometry.block_count = 512;
    geometry.block_size = 128;
    blocks_ = std::make_unique<BlockServer>(host_, Port(0xB10C), scheme, 1,
                                            geometry);
    blocks_->start();
    files_ = std::make_unique<FlatFileServer>(host_, Port(0xF17E), scheme, 2,
                                              blocks_->put_port());
    files_->start();
    dirs_ = std::make_unique<DirectoryServer>(host_, Port(0xD1D1), scheme, 3);
    dirs_->start();
    transport_ = std::make_unique<rpc::Transport>(user_, 4);
    fs_ = std::make_unique<UnixFs>(
        UnixFs::format(*transport_, dirs_->put_port(), files_->put_port())
            .value());
  }

  net::Network net_;
  net::Machine& host_;
  net::Machine& user_;
  Rng rng_;
  std::unique_ptr<BlockServer> blocks_;
  std::unique_ptr<FlatFileServer> files_;
  std::unique_ptr<DirectoryServer> dirs_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<UnixFs> fs_;
};

TEST_F(UnixFsSuite, CreateWriteReadRoundTrip) {
  const auto fd = fs_->open("hello.txt",
                            UnixFs::kWrite | UnixFs::kRead | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("hello unix")).ok());
  ASSERT_TRUE(fs_->lseek(fd.value(), 0, UnixFs::Whence::kSet).ok());
  EXPECT_EQ(text(fs_->read(fd.value(), 100).value()), "hello unix");
  EXPECT_TRUE(fs_->close(fd.value()).ok());
}

TEST_F(UnixFsSuite, OffsetsAdvanceLikePosix) {
  const auto fd = fs_->open("f", UnixFs::kWrite | UnixFs::kRead |
                                     UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("abcdef")).ok());
  // Sequential reads continue where the previous one stopped.
  ASSERT_TRUE(fs_->lseek(fd.value(), 0, UnixFs::Whence::kSet).ok());
  EXPECT_EQ(text(fs_->read(fd.value(), 2).value()), "ab");
  EXPECT_EQ(text(fs_->read(fd.value(), 2).value()), "cd");
  // lseek relative and from end.
  EXPECT_EQ(fs_->lseek(fd.value(), -1, UnixFs::Whence::kCur).value(), 3u);
  EXPECT_EQ(text(fs_->read(fd.value(), 1).value()), "d");
  EXPECT_EQ(fs_->lseek(fd.value(), -2, UnixFs::Whence::kEnd).value(), 4u);
  EXPECT_EQ(text(fs_->read(fd.value(), 10).value()), "ef");
  // Negative absolute position is rejected.
  EXPECT_EQ(fs_->lseek(fd.value(), -99, UnixFs::Whence::kSet).error(),
            ErrorCode::invalid_argument);
}

TEST_F(UnixFsSuite, OpenFlagsEnforced) {
  // Missing file without kCreate.
  EXPECT_EQ(fs_->open("nope", UnixFs::kRead).error(), ErrorCode::not_found);
  // kCreate requires kWrite.
  EXPECT_EQ(fs_->open("nope", UnixFs::kRead | UnixFs::kCreate).error(),
            ErrorCode::invalid_argument);
  // A read-only descriptor rejects writes locally...
  ASSERT_TRUE(fs_->open("f", UnixFs::kWrite | UnixFs::kCreate).ok());
  const auto ro = fs_->open("f", UnixFs::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(fs_->write(ro.value(), bytes("x")).error(),
            ErrorCode::permission_denied);
  // ...and a write-only descriptor rejects reads.
  const auto wo = fs_->open("f", UnixFs::kWrite);
  ASSERT_TRUE(wo.ok());
  EXPECT_EQ(fs_->read(wo.value(), 1).error(), ErrorCode::permission_denied);
}

TEST_F(UnixFsSuite, TruncateAndAppend) {
  const auto fd = fs_->open("log", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("0123456789")).ok());
  ASSERT_TRUE(fs_->close(fd.value()).ok());
  // O_TRUNC empties the file.
  const auto trunc = fs_->open("log", UnixFs::kWrite | UnixFs::kTrunc);
  ASSERT_TRUE(trunc.ok());
  EXPECT_EQ(fs_->stat("log").value().size, 0u);
  ASSERT_TRUE(fs_->write(trunc.value(), bytes("new")).ok());
  ASSERT_TRUE(fs_->close(trunc.value()).ok());
  // O_APPEND writes land at EOF regardless of seeks.
  const auto append = fs_->open("log", UnixFs::kWrite | UnixFs::kAppend);
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(fs_->lseek(append.value(), 0, UnixFs::Whence::kSet).ok());
  ASSERT_TRUE(fs_->write(append.value(), bytes("+more")).ok());
  const auto check = fs_->open("log", UnixFs::kRead);
  EXPECT_EQ(text(fs_->read(check.value(), 100).value()), "new+more");
}

TEST_F(UnixFsSuite, DirectoriesAndNestedPaths) {
  ASSERT_TRUE(fs_->mkdir("usr").ok());
  ASSERT_TRUE(fs_->mkdir("usr/local").ok());
  ASSERT_TRUE(fs_->mkdir("usr/local/bin").ok());
  const auto fd = fs_->open("usr/local/bin/tool",
                            UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("#!amoeba")).ok());

  const auto st = fs_->stat("usr/local/bin/tool");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st.value().is_directory);
  EXPECT_EQ(st.value().size, 8u);

  const auto dir_st = fs_->stat("usr/local");
  ASSERT_TRUE(dir_st.ok());
  EXPECT_TRUE(dir_st.value().is_directory);
  EXPECT_EQ(dir_st.value().size, 1u);  // one entry: bin

  const auto entries = fs_->readdir("usr/local/bin");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "tool");
  // Leading slash and root listing both work.
  EXPECT_TRUE(fs_->stat("/usr").ok());
  EXPECT_EQ(fs_->readdir("/").value().size(), 1u);
}

TEST_F(UnixFsSuite, UnlinkAndRmdirSemantics) {
  ASSERT_TRUE(fs_->mkdir("d").ok());
  const auto fd = fs_->open("d/f", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  // rmdir refuses non-empty directories and files.
  EXPECT_EQ(fs_->rmdir("d").error(), ErrorCode::not_empty);
  EXPECT_EQ(fs_->rmdir("d/f").error(), ErrorCode::invalid_argument);
  // unlink refuses directories.
  EXPECT_EQ(fs_->unlink("d").error(), ErrorCode::invalid_argument);
  ASSERT_TRUE(fs_->unlink("d/f").ok());
  EXPECT_EQ(fs_->stat("d/f").error(), ErrorCode::not_found);
  EXPECT_TRUE(fs_->rmdir("d").ok());
  EXPECT_EQ(fs_->stat("d").error(), ErrorCode::not_found);
}

TEST_F(UnixFsSuite, UnlinkDestroysTheFileObject) {
  const auto fd = fs_->open("victim", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("data")).ok());
  const auto cap = fs_->stat("victim").value().capability;
  ASSERT_TRUE(fs_->unlink("victim").ok());
  // The capability is dead at the file server, not merely unnamed.
  FlatFileClient files(*transport_, files_->put_port());
  EXPECT_FALSE(files.size(cap).ok());
}

TEST_F(UnixFsSuite, RenameMovesAcrossDirectories) {
  ASSERT_TRUE(fs_->mkdir("a").ok());
  ASSERT_TRUE(fs_->mkdir("b").ok());
  const auto fd = fs_->open("a/doc", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("content")).ok());
  ASSERT_TRUE(fs_->rename("a/doc", "b/doc2").ok());
  EXPECT_EQ(fs_->stat("a/doc").error(), ErrorCode::not_found);
  const auto moved = fs_->open("b/doc2", UnixFs::kRead);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(text(fs_->read(moved.value(), 100).value()), "content");
  // Rename onto an existing name is rejected (no implicit overwrite).
  ASSERT_TRUE(fs_->open("a/doc", UnixFs::kWrite | UnixFs::kCreate).ok());
  EXPECT_EQ(fs_->rename("a/doc", "b/doc2").error(), ErrorCode::exists);
}

TEST_F(UnixFsSuite, DescriptorTableReusesSlots) {
  const auto fd1 = fs_->open("f1", UnixFs::kWrite | UnixFs::kCreate);
  const auto fd2 = fs_->open("f2", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(fd2.ok());
  EXPECT_NE(fd1.value(), fd2.value());
  ASSERT_TRUE(fs_->close(fd1.value()).ok());
  // Operations on a closed descriptor fail (before any reuse).
  EXPECT_EQ(fs_->read(fd1.value(), 1).error(), ErrorCode::invalid_argument);
  // POSIX: lowest free descriptor is reused.
  const auto fd3 = fs_->open("f3", UnixFs::kWrite | UnixFs::kCreate);
  EXPECT_EQ(fd3.value(), fd1.value());
  EXPECT_EQ(fs_->close(99).error(), ErrorCode::invalid_argument);
}

TEST_F(UnixFsSuite, PathEdgeCases) {
  EXPECT_EQ(fs_->open("", UnixFs::kRead).error(), ErrorCode::invalid_argument);
  EXPECT_EQ(fs_->open("/", UnixFs::kRead).error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(fs_->mkdir("a//b").error(), ErrorCode::invalid_argument);
  // Opening a directory as a file fails.
  ASSERT_TRUE(fs_->mkdir("dir").ok());
  EXPECT_EQ(fs_->open("dir", UnixFs::kRead).error(),
            ErrorCode::invalid_argument);
  // A file used as an intermediate component fails (ENOTDIR).
  ASSERT_TRUE(fs_->open("plain", UnixFs::kWrite | UnixFs::kCreate).ok());
  EXPECT_EQ(fs_->open("plain/sub", UnixFs::kRead).error(),
            ErrorCode::invalid_argument);
}

TEST_F(UnixFsSuite, TwoMountsShareTheTree) {
  // Another process mounts the same root capability and sees the files --
  // the tree is server state, the UnixFs object only user-side bookkeeping.
  const auto fd = fs_->open("shared", UnixFs::kWrite | UnixFs::kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->write(fd.value(), bytes("visible")).ok());

  rpc::Transport other(net_.add_machine("other-user"), 9);
  UnixFs second_mount(other, files_->put_port(), fs_->root());
  const auto their_fd = second_mount.open("shared", UnixFs::kRead);
  ASSERT_TRUE(their_fd.ok());
  EXPECT_EQ(text(second_mount.read(their_fd.value(), 100).value()),
            "visible");
}

TEST_F(UnixFsSuite, ReaddirStatMatchesStatLoopWithFewerRoundTrips) {
  // A mixed listing: files of known sizes plus a subdirectory with two
  // entries.  The batched listing must agree with per-entry stat() while
  // paying one batch frame per server instead of one stat per entry.
  for (int i = 0; i < 8; ++i) {
    const auto fd = fs_->open("file" + std::to_string(i),
                              UnixFs::kWrite | UnixFs::kCreate);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->write(fd.value(), Buffer(static_cast<std::size_t>(i + 1),
                                              'x'))
                    .ok());
    ASSERT_TRUE(fs_->close(fd.value()).ok());
  }
  ASSERT_TRUE(fs_->mkdir("sub").ok());
  ASSERT_TRUE(fs_->mkdir("sub/a").ok());
  ASSERT_TRUE(fs_->mkdir("sub/b").ok());

  const auto before = transport_->stats().transactions;
  const auto batched = fs_->readdir_stat("");
  const auto batched_round_trips = transport_->stats().transactions - before;
  ASSERT_TRUE(batched.ok()) << to_string(batched.error());
  ASSERT_EQ(batched.value().size(), 9u);
  // files live on the file server, "sub" on the directory server: one
  // LIST for the root plus one batch frame per server = 3 transactions,
  // where the stat loop pays 1 + 9 resolves + 9 stats.
  EXPECT_EQ(batched_round_trips, 3u);
  for (const auto& entry : batched.value()) {
    const auto loop = fs_->stat(entry.name);
    ASSERT_TRUE(loop.ok()) << entry.name << ": " << to_string(loop.error());
    EXPECT_EQ(entry.stat.is_directory, loop.value().is_directory)
        << entry.name;
    EXPECT_EQ(entry.stat.size, loop.value().size) << entry.name;
    EXPECT_EQ(entry.stat.capability, loop.value().capability) << entry.name;
  }
}

}  // namespace
}  // namespace amoeba::servers
