// Tests for the blocking RPC layer: trans request/reply, one-shot reply
// ports, the locate cache (cold, warm, stale after migration), timeouts,
// concurrent clients, and multi-worker services.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "amoeba/net/network.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"

namespace amoeba::rpc {
namespace {

using namespace std::chrono_literals;

/// Echoes the request payload; opcode 2 asks the service to stall briefly
/// (timeout tests), opcode 3 reports the worker thread id hash.
class EchoService final : public Service {
 public:
  using Service::Service;
  ~EchoService() override { stop(); }  // workers quiesce before vptr reset

 protected:
  net::Message handle(const net::Delivery& request) override {
    if (request.message.header.opcode == 2) {
      std::this_thread::sleep_for(300ms);
    }
    net::Message reply = net::make_reply(request.message, ErrorCode::ok);
    reply.data = request.message.data;
    reply.header.params[0] = request.message.header.params[0] + 1;
    if (request.message.header.opcode == 3) {
      reply.header.params[1] =
          std::hash<std::thread::id>{}(std::this_thread::get_id());
    }
    return reply;
  }
};

TEST(TransportTest, BasicTransRoundTrip) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1001), "echo");
  service.start();
  Transport transport(cm, 1);

  net::Message req;
  req.header.dest = service.put_port();
  req.header.opcode = 1;
  req.header.params[0] = 41;
  req.data = {1, 2, 3};
  const auto reply = transport.trans(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.status, ErrorCode::ok);
  EXPECT_EQ(reply.value().message.header.params[0], 42u);
  EXPECT_EQ(reply.value().message.data, (Buffer{1, 2, 3}));
  EXPECT_EQ(service.requests_served(), 1u);
}

TEST(TransportTest, UnknownPortFailsWithNoSuchPort) {
  net::Network net;
  net::Machine& cm = net.add_machine("client");
  Transport transport(cm, 1);
  net::Message req;
  req.header.dest = Port(0xDEAD);
  const auto reply = transport.trans(req, 200ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error(), ErrorCode::no_such_port);
}

TEST(TransportTest, LocateCacheWarmsAfterFirstCall) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1002), "echo");
  service.start();
  Transport transport(cm, 1);

  net::Message req;
  req.header.dest = service.put_port();
  ASSERT_TRUE(transport.trans(req).ok());
  ASSERT_TRUE(transport.trans(req).ok());
  ASSERT_TRUE(transport.trans(req).ok());
  const auto stats = transport.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(net.stats().locates.load(), 1u);
}

TEST(TransportTest, StaleCacheRecoversAfterMigration) {
  net::Network net;
  net::Machine& a = net.add_machine("a");
  net::Machine& b = net.add_machine("b");
  net::Machine& cm = net.add_machine("client");
  EchoService service(a, Port(0x1003), "echo");
  service.start();
  Transport transport(cm, 1);

  net::Message req;
  req.header.dest = service.put_port();
  ASSERT_TRUE(transport.trans(req).ok());

  // Migrate the service to machine b.
  service.stop();
  service.rebind(b);
  service.start();

  const auto reply = transport.trans(req);
  ASSERT_TRUE(reply.ok());
  const auto stats = transport.stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(service.machine().id(), b.id());
}

TEST(TransportTest, DeadServiceTimesOutOrFailsLocate) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Port put;
  {
    EchoService service(sm, Port(0x1004), "echo");
    service.start();
    put = service.put_port();
    Transport warm(cm, 1);
    net::Message req;
    req.header.dest = put;
    ASSERT_TRUE(warm.trans(req).ok());
  }  // service stopped and destroyed
  Transport transport(cm, 2);
  net::Message req;
  req.header.dest = put;
  const auto reply = transport.trans(req, 200ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error(), ErrorCode::no_such_port);
}

TEST(TransportTest, SlowServiceTimesOut) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1005), "echo");
  service.start();
  Transport transport(cm, 1);
  net::Message req;
  req.header.dest = service.put_port();
  req.header.opcode = 2;  // stall
  const auto reply = transport.trans(req, 50ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error(), ErrorCode::timeout);
  EXPECT_EQ(transport.stats().timeouts, 1u);
}

TEST(TransportTest, ConcurrentClientsShareOneTransport) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1006), "echo");
  service.start(4);
  Transport transport(cm, 1);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kCallsPerThread; ++i) {
          net::Message req;
          req.header.dest = service.put_port();
          req.header.params[0] =
              static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i);
          const auto reply = transport.trans(req, 5000ms);
          if (!reply.ok() ||
              reply.value().message.header.params[0] != req.header.params[0] + 1) {
            failures.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.requests_served(),
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
}

TEST(TransportTest, RepliesUseOneShotPorts) {
  // Two consecutive transactions must use different reply ports on the
  // wire (no long-lived communication structures).
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1007), "echo");
  service.start();
  Transport transport(cm, 1);

  std::vector<Port> reply_ports;
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data &&
        !rec.message.header.reply.is_null()) {
      reply_ports.push_back(rec.message.header.reply);
    }
  });
  net::Message req;
  req.header.dest = service.put_port();
  ASSERT_TRUE(transport.trans(req).ok());
  ASSERT_TRUE(transport.trans(req).ok());
  ASSERT_EQ(reply_ports.size(), 2u);
  EXPECT_NE(reply_ports[0], reply_ports[1]);
}

TEST(ServiceTest, MultipleWorkersServeInParallel) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1008), "echo");
  service.start(3);
  Transport transport(cm, 1);

  // Opcode 2 stalls 300ms; three stalled calls in parallel should finish
  // in roughly one stall period, proving concurrent workers.
  const auto begin = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> calls;
    for (int i = 0; i < 3; ++i) {
      calls.emplace_back([&] {
        net::Message req;
        req.header.dest = service.put_port();
        req.header.opcode = 2;
        EXPECT_TRUE(transport.trans(req, 5000ms).ok());
      });
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, 800ms);
}

TEST(ServiceTest, StartStopRestartCycles) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x1009), "echo");
  Transport transport(cm, 1);
  net::Message req;
  req.header.dest = service.put_port();

  for (int cycle = 0; cycle < 3; ++cycle) {
    service.start();
    EXPECT_TRUE(transport.trans(req).ok());
    service.stop();
    EXPECT_FALSE(transport.trans(req, 100ms).ok());
  }
}

TEST(ServiceTest, DoubleStartThrows) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  EchoService service(sm, Port(0x100A), "echo");
  service.start();
  EXPECT_THROW(service.start(), UsageError);
}

TEST(ServiceTest, RebindWhileRunningThrows) {
  net::Network net;
  net::Machine& a = net.add_machine("a");
  net::Machine& b = net.add_machine("b");
  EchoService service(a, Port(0x100B), "echo");
  service.start();
  EXPECT_THROW(service.rebind(b), UsageError);
}

TEST(ServiceTest, SignatureVerificationAdmitsOnlyTrueOwner) {
  // §2.2: each client picks a secret S and publishes F(S); a service can
  // authenticate senders by comparing the arriving (F-box transformed)
  // signature against the published values.
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  net::Machine& im = net.add_machine("intruder");
  EchoService service(sm, Port(0x100D), "echo");

  const Port secret_signature(0xABCDEF);
  const Port published = cm.fbox().f().apply(secret_signature);
  service.set_allowed_signatures({published});
  service.start();

  // The legitimate client, owning S, is admitted.
  Transport alice(cm, 1);
  alice.set_signature(secret_signature);
  net::Message req;
  req.header.dest = service.put_port();
  const auto ok_reply = alice.trans(req);
  ASSERT_TRUE(ok_reply.ok());
  EXPECT_EQ(ok_reply.value().message.header.status, ErrorCode::ok);

  // An unsigned request is refused.
  Transport unsigned_client(cm, 2);
  const auto unsigned_reply = unsigned_client.trans(req);
  ASSERT_TRUE(unsigned_reply.ok());
  EXPECT_EQ(unsigned_reply.value().message.header.status,
            ErrorCode::permission_denied);

  // The intruder saw F(S) on the wire and submits it as his signature --
  // but his own F-box transforms it to F(F(S)), which is not published.
  Transport mallory(im, 3);
  mallory.set_signature(published);
  const auto forged_reply = mallory.trans(req);
  ASSERT_TRUE(forged_reply.ok());
  EXPECT_EQ(forged_reply.value().message.header.status,
            ErrorCode::permission_denied);

  // Clearing the requirement reopens the service.
  service.set_allowed_signatures({});
  const auto open_reply = unsigned_client.trans(req);
  ASSERT_TRUE(open_reply.ok());
  EXPECT_EQ(open_reply.value().message.header.status, ErrorCode::ok);
}

TEST(ServiceTest, SignedRequestsCarrySenderSignature) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  EchoService service(sm, Port(0x100C), "echo");
  service.start();
  Transport transport(cm, 1);
  // The client picks a random secret signature S and publishes F(S).
  const Port secret_signature(0x5167);
  transport.set_signature(secret_signature);
  const Port published = cm.fbox().f().apply(secret_signature);

  Port seen_signature;
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data &&
        !rec.message.header.signature.is_null()) {
      seen_signature = rec.message.header.signature;
    }
  });
  net::Message req;
  req.header.dest = service.put_port();
  ASSERT_TRUE(transport.trans(req).ok());
  // On the wire: F(S), which matches the published value -- and the secret
  // S itself never appears.
  EXPECT_EQ(seen_signature, published);
  EXPECT_NE(seen_signature, secret_signature);
}

}  // namespace
}  // namespace amoeba::rpc
