// At-most-once semantics over a lossy network (docs/PROTOCOL.md §5): the
// transport's (client, seq) stamping + backoff retransmission against the
// service's duplicate-suppression reply cache, exercised with injected
// frame drop, duplication, and reordering -- globally and per link.  The
// non-idempotent victims are bank.transfer (double execution mints money)
// and std_destroy (double execution double-frees the object).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/common.hpp"
#include "test_seed.hpp"

namespace amoeba::servers {
namespace {

using namespace std::chrono_literals;

class LossySuite : public ::testing::Test {
 protected:
  LossySuite()
      : net_(net::Network::Config{.seed = test::seed_base(17)}),
        bank_machine_(net_.add_machine("bank")),
        client_machine_(net_.add_machine("client")),
        rng_(test::seed_base(17) + 1) {
    bank_ = std::make_unique<BankServer>(
        bank_machine_, Port(0x10AD),
        core::make_scheme(core::SchemeKind::commutative, rng_), 1);
    bank_->start(2);
    transport_ = std::make_unique<rpc::Transport>(client_machine_,
                                                  test::seed_base(17) + 2);
    // Fast backoff so lossy runs converge quickly; generous deadline so
    // 20% drop cannot realistically exhaust it.
    transport_->set_retransmit(5ms, 80ms);
    transport_->set_default_timeout(10'000ms);
    client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
    // Fault-free setup: accounts + seed money.
    alice_ = client_->create_account().value();
    bob_ = client_->create_account().value();
    EXPECT_TRUE(client_
                    ->mint(bank_->master_capability(), alice_,
                           currency::kDollar, 1'000'000)
                    .ok());
  }

  [[nodiscard]] std::int64_t dollars(const core::Capability& account) {
    return client_->balance(account, currency::kDollar).value();
  }

  net::Network net_;
  net::Machine& bank_machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
};

TEST_F(LossySuite, TransfersSurviveDropAndDuplicationExactlyOnce) {
  net_.set_fault_injection(0.20, 0.10);
  constexpr int kTransfers = 100;
  constexpr std::int64_t kAmount = 7;
  for (int i = 0; i < kTransfers; ++i) {
    ASSERT_TRUE(
        client_->transfer(alice_, bob_, currency::kDollar, kAmount).ok())
        << "transfer " << i;
  }
  net_.set_fault_injection(0.0, 0.0);
  // Every transfer applied exactly once: not one lost to a dropped frame,
  // not one doubled by a retransmitted or duplicated frame.
  EXPECT_EQ(dollars(bob_), kTransfers * kAmount);
  EXPECT_EQ(dollars(alice_), 1'000'000 - kTransfers * kAmount);
  // The loss was real and the machinery engaged.
  EXPECT_GT(net_.stats().dropped.load(), 0u);
  EXPECT_GT(transport_->stats().retransmits, 0u);
  EXPECT_GT(bank_->reply_cache_stats().duplicates_suppressed, 0u);
}

TEST_F(LossySuite, DuplicatedTransferIsNeverAppliedTwice) {
  // 100% duplication: every request frame arrives twice.  Without the
  // reply cache the second copy would re-run the handler and bob would
  // end up with double the money.
  net_.set_fault_injection(0.0, 1.0);
  constexpr int kTransfers = 20;
  constexpr std::int64_t kAmount = 5;
  for (int i = 0; i < kTransfers; ++i) {
    ASSERT_TRUE(
        client_->transfer(alice_, bob_, currency::kDollar, kAmount).ok());
  }
  net_.set_fault_injection(0.0, 0.0);
  EXPECT_EQ(dollars(bob_), kTransfers * kAmount);
  EXPECT_EQ(dollars(alice_), 1'000'000 - kTransfers * kAmount);
  EXPECT_GE(bank_->reply_cache_stats().duplicates_suppressed,
            static_cast<std::uint64_t>(kTransfers));
}

TEST_F(LossySuite, StdDestroyUnderDuplicationFreesExactlyOnce) {
  const core::Capability doomed = client_->create_account().value();
  ASSERT_TRUE(client_
                  ->mint(bank_->master_capability(), doomed,
                         currency::kDollar, 50)
                  .ok());
  const auto suppressed_before =
      bank_->reply_cache_stats().duplicates_suppressed;
  net_.set_fault_injection(0.20, 1.0);
  // The duplicated destroy must report success (cached reply), not the
  // no_such_object a re-executed destroy would produce.
  ASSERT_TRUE(rpc::std_destroy(*transport_, doomed).ok());
  net_.set_fault_injection(0.0, 0.0);
  // The duplicate copy may still sit in the other worker's queue when the
  // reply resolves; give the suppression a moment to land.
  const auto deadline = std::chrono::steady_clock::now() + 5'000ms;
  while (bank_->reply_cache_stats().duplicates_suppressed <=
             suppressed_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GT(bank_->reply_cache_stats().duplicates_suppressed,
            suppressed_before);
  // The object is gone exactly once: a FRESH destroy (new transaction,
  // not a duplicate) is an error, not a crash or a second hook run.
  EXPECT_FALSE(rpc::std_destroy(*transport_, doomed).ok());
  EXPECT_FALSE(client_->balance(doomed, currency::kDollar).ok());
}

TEST_F(LossySuite, BatchEnvelopeRetransmitsAndSuppressesAsAUnit) {
  net_.set_fault_injection(0.20, 0.10);
  constexpr std::size_t kEntries = 16;
  constexpr std::int64_t kAmount = 3;
  std::vector<BankClient::Transfer> transfers(
      kEntries, {alice_, bob_, currency::kDollar, kAmount});
  const auto outcomes = client_->transfer_many(transfers);
  net_.set_fault_injection(0.0, 0.0);
  ASSERT_EQ(outcomes.size(), kEntries);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok());
  }
  EXPECT_EQ(dollars(bob_), static_cast<std::int64_t>(kEntries) * kAmount);
  // The envelope was suppressed as a unit: each sub-request was unpacked
  // (and executed) exactly once no matter how often the frame arrived.
  EXPECT_EQ(bank_->batched_requests(), kEntries);
}

TEST_F(LossySuite, PerLinkFaultsHitOnlyTheirLink) {
  // Half the request frames die on the client->bank link; the reply
  // direction is clean.  Traffic still converges, and the drops all come
  // from the faulted link.
  net_.set_link_faults(client_machine_.id(), bank_machine_.id(),
                       {.drop = 0.5});
  constexpr int kTransfers = 30;
  for (int i = 0; i < kTransfers; ++i) {
    ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 1).ok());
  }
  net_.clear_link_faults();
  EXPECT_EQ(dollars(bob_), kTransfers);
  EXPECT_GT(net_.stats().dropped.load(), 0u);
  EXPECT_GT(transport_->stats().retransmits, 0u);
}

TEST_F(LossySuite, ReorderInjectionStaysExactlyOnce) {
  // Every request frame is held back until the next one on the link; the
  // retransmission timer is what keeps the pipeline moving (a retransmit
  // releases its held original, the server executes whichever copy lands
  // first and suppresses the other).
  net_.set_link_faults(client_machine_.id(), bank_machine_.id(),
                       {.reorder = 1.0});
  constexpr int kTransfers = 10;
  for (int i = 0; i < kTransfers; ++i) {
    ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 2).ok());
  }
  net_.clear_link_faults();
  EXPECT_EQ(dollars(bob_), kTransfers * 2);
  EXPECT_GT(net_.stats().reordered.load(), 0u);
}

TEST_F(LossySuite, RetransmissionDisabledRestoresBareTimeouts) {
  transport_->set_retransmit(0ms, 0ms);
  // Delta-based: a setup RPC may already have retransmitted on a slow
  // host (the fixture runs with the default timer); only transactions
  // issued AFTER disabling must add none.
  const auto retransmits_before = transport_->stats().retransmits;
  net_.set_fault_injection(1.0, 0.0);  // every frame lost
  net::Message req = rpc::make_request(bank_->put_port(),
                                       bank_ops::kBalance, alice_,
                                       {currency::kDollar});
  const auto reply = transport_->trans(req, 150ms);
  net_.set_fault_injection(0.0, 0.0);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error(), ErrorCode::timeout);
  EXPECT_EQ(transport_->stats().retransmits, retransmits_before);
}

TEST_F(LossySuite, HandBuiltDuplicateIsSuppressedDeterministically) {
  // Wire-level check without fault dice: the same stamped frame delivered
  // twice executes once and the second copy is answered from the cache
  // with an identical reply.
  net::Message request = rpc::make_request(bank_->put_port(),
                                           bank_ops::kBalance, alice_,
                                           {currency::kDollar});
  request.header.flags |= net::kFlagAtMostOnce;
  request.header.client = 0xC0FFEE;
  request.header.seq = 1;
  const Port reply_get(0x7777);
  net::Receiver replies = client_machine_.listen(reply_get);
  request.header.reply = reply_get;

  const auto served_before = bank_->requests_served();
  ASSERT_TRUE(client_machine_.transmit(request, bank_machine_.id()));
  const auto first = replies.receive({}, 2'000ms);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->message.header.status, ErrorCode::ok);

  ASSERT_TRUE(client_machine_.transmit(request, bank_machine_.id()));
  const auto second = replies.receive({}, 2'000ms);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->message.header.status, ErrorCode::ok);
  EXPECT_EQ(second->message.header.params, first->message.header.params);
  EXPECT_EQ(second->message.header.seq, 1u);

  // One execution, one resend.
  EXPECT_EQ(bank_->requests_served(), served_before + 1);
  EXPECT_GE(bank_->reply_cache_stats().replies_resent, 1u);
}

TEST_F(LossySuite, ClientEvictionLeavesAFloorTombstoneNeverReexecutes) {
  // With a one-client cap, a second client demotes the first to a
  // floor-only tombstone.  A duplicate of the demoted client's completed
  // transaction must then be DROPPED -- re-executing it would break
  // at-most-once; re-sending is impossible (the reply is gone).
  bank_->set_reply_cache_limits(8, 1);
  const Port reply_get(0x8888);
  net::Receiver replies = client_machine_.listen(reply_get);
  const auto request_from = [&](std::uint64_t client, std::uint64_t seq) {
    net::Message request = rpc::make_request(bank_->put_port(),
                                             bank_ops::kBalance, alice_,
                                             {currency::kDollar});
    request.header.flags |= net::kFlagAtMostOnce;
    request.header.client = client;
    request.header.seq = seq;
    request.header.reply = reply_get;
    return request;
  };

  ASSERT_TRUE(client_machine_.transmit(request_from(1, 1),
                                       bank_machine_.id()));
  ASSERT_TRUE(replies.receive({}, 2'000ms).has_value());
  ASSERT_TRUE(client_machine_.transmit(request_from(2, 1),
                                       bank_machine_.id()));  // demotes 1
  ASSERT_TRUE(replies.receive({}, 2'000ms).has_value());

  const auto served_before = bank_->requests_served();
  ASSERT_TRUE(client_machine_.transmit(request_from(1, 1),
                                       bank_machine_.id()));  // duplicate
  EXPECT_FALSE(replies.receive({}, 150ms).has_value());  // silence
  EXPECT_EQ(bank_->requests_served(), served_before);    // and no re-run
  bank_->set_reply_cache_limits(128, 4096);
}

TEST_F(LossySuite, RecreatedTransportGetsAFreshClientId) {
  // A transport recreated with the same machine and seed must not inherit
  // the old one's (client id, seq) stream: a surviving server would
  // answer its first transactions from the old transport's reply cache.
  const std::uint64_t first_id = transport_->client_id();
  rpc::Transport reborn(client_machine_,
                        test::seed_base(17) + 2);  // same machine, same seed
  EXPECT_NE(reborn.client_id(), first_id);
  EXPECT_NE(reborn.client_id(), 0u);
  // And it really does execute fresh transactions against the same bank.
  BankClient client(reborn, bank_->put_port());
  EXPECT_EQ(client.balance(alice_, currency::kDollar).value(), 1'000'000);
}

TEST_F(LossySuite, SeqZeroIsServedWithoutSuppressionNotSwallowed) {
  // seq 0 is outside the spec (sequences start at 1); such a frame must
  // be answered like a legacy frame -- executed, not silently dropped by
  // the floor check, and never cached.
  net::Message request = rpc::make_request(bank_->put_port(),
                                           bank_ops::kBalance, alice_,
                                           {currency::kDollar});
  request.header.flags |= net::kFlagAtMostOnce;
  request.header.client = 0xBAD;
  request.header.seq = 0;
  const Port reply_get(0x9999);
  net::Receiver replies = client_machine_.listen(reply_get);
  request.header.reply = reply_get;

  const auto served_before = bank_->requests_served();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client_machine_.transmit(request, bank_machine_.id()));
    const auto reply = replies.receive({}, 2'000ms);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->message.header.status, ErrorCode::ok);
  }
  // Both copies executed: no at-most-once semantics were applied.
  EXPECT_EQ(bank_->requests_served(), served_before + 2);
}

TEST_F(LossySuite, TombstonePoolIsBoundedAgainstClientIdChurn) {
  // The client id is a self-chosen wire field: a peer cycling fresh ids
  // must not grow the reply cache without limit.  With a 1-client cap the
  // table (live + tombstones) stays within 8x the cap + the newcomer.
  bank_->flush_reply_cache();
  bank_->set_reply_cache_limits(2, 1);
  const Port reply_get(0xAAAA);
  net::Receiver replies = client_machine_.listen(reply_get);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    net::Message request = rpc::make_request(bank_->put_port(),
                                             bank_ops::kBalance, alice_,
                                             {currency::kDollar});
    request.header.flags |= net::kFlagAtMostOnce;
    request.header.client = id;
    request.header.seq = 1;
    request.header.reply = reply_get;
    ASSERT_TRUE(client_machine_.transmit(request, bank_machine_.id()));
    ASSERT_TRUE(replies.receive({}, 2'000ms).has_value());
  }
  const auto stats = bank_->reply_cache_stats();
  EXPECT_LE(stats.clients, 9u);  // 8 x max_clients + the newest entry
  EXPECT_GT(stats.evicted_clients, 0u);
  bank_->set_reply_cache_limits(128, 4096);
}

TEST_F(LossySuite, ReplyCacheWindowEvictsAndFlushes) {
  bank_->set_reply_cache_limits(4, 0);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 1).ok());
  }
  auto stats = bank_->reply_cache_stats();
  EXPECT_GT(stats.evicted_entries, 0u);
  EXPECT_LE(stats.entries, 4u * stats.clients);
  // The eviction hook: flushing empties the table and traffic goes on.
  bank_->flush_reply_cache();
  stats = bank_->reply_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.clients, 0u);
  EXPECT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 1).ok());
}

}  // namespace
}  // namespace amoeba::servers
