// Tests for the F-box-less software protection (§2.4): sealing, the key
// matrix, hashed capability caches, the public-key boot handshake, and the
// replay/impersonation defenses it provides.
#include <gtest/gtest.h>

#include <chrono>

#include "amoeba/core/capability.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/softprot/filter.hpp"
#include "amoeba/softprot/handshake.hpp"
#include "amoeba/softprot/keystore.hpp"
#include "amoeba/softprot/seal.hpp"

namespace amoeba::softprot {
namespace {

using namespace std::chrono_literals;

net::CapabilityBytes sample_cap(std::uint64_t tag) {
  const core::Capability cap{Port(0xABC000000000ULL | tag),
                             ObjectNumber(7), Rights(0x3F),
                             CheckField(0x123456789ABCULL ^ tag)};
  return core::pack(cap);
}

// -------------------------------------------------------------------- seal

TEST(Seal, RoundTripsUnderSameKey) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next();
    net::CapabilityBytes block;
    rng.fill(block);
    const net::CapabilityBytes original = block;
    seal128(key, block);
    EXPECT_NE(block, original);
    unseal128(key, block);
    EXPECT_EQ(block, original);
  }
}

TEST(Seal, WrongKeyYieldsGarbage) {
  net::CapabilityBytes block = sample_cap(1);
  const net::CapabilityBytes original = block;
  seal128(111, block);
  unseal128(222, block);
  EXPECT_NE(block, original);
}

TEST(Seal, EveryInputBitAffectsWholeOutput) {
  // Both halves of the ciphertext must change when any single plaintext
  // bit flips (the two-pass construction's purpose).
  const std::uint64_t key = 0xFEED;
  const net::CapabilityBytes base_plain = sample_cap(2);
  net::CapabilityBytes base = base_plain;
  seal128(key, base);
  for (int byte = 0; byte < 16; ++byte) {
    net::CapabilityBytes mutated = base_plain;
    mutated[static_cast<std::size_t>(byte)] ^= 1;
    seal128(key, mutated);
    bool low_half_changed = false;
    bool high_half_changed = false;
    for (int i = 0; i < 8; ++i) {
      low_half_changed |= mutated[static_cast<std::size_t>(i)] !=
                          base[static_cast<std::size_t>(i)];
      high_half_changed |= mutated[static_cast<std::size_t>(8 + i)] !=
                           base[static_cast<std::size_t>(8 + i)];
    }
    EXPECT_TRUE(low_half_changed) << "byte " << byte;
    EXPECT_TRUE(high_half_changed) << "byte " << byte;
  }
}

TEST(Seal, XcryptDataIsSymmetricAndNonceSensitive) {
  Rng rng(2);
  Buffer data(100);
  rng.fill(data);
  const Buffer original = data;
  xcrypt_data(42, 7, data);
  EXPECT_NE(data, original);
  xcrypt_data(42, 7, data);
  EXPECT_EQ(data, original);
  // Different nonce produces a different ciphertext.
  Buffer other = original;
  xcrypt_data(42, 8, other);
  Buffer base = original;
  xcrypt_data(42, 7, base);
  EXPECT_NE(other, base);
}

// ---------------------------------------------------------------- keystore

TEST(KeyStoreTest, StoresAndClears) {
  KeyStore ks;
  EXPECT_FALSE(ks.tx(MachineId(1)).has_value());
  ks.set_tx(MachineId(1), 10);
  ks.set_rx(MachineId(2), 20);
  EXPECT_EQ(ks.tx(MachineId(1)), 10u);
  EXPECT_EQ(ks.rx(MachineId(2)), 20u);
  EXPECT_EQ(ks.tx_count(), 1u);
  ks.clear();
  EXPECT_FALSE(ks.tx(MachineId(1)).has_value());
  EXPECT_FALSE(ks.rx(MachineId(2)).has_value());
}

TEST(KeyMatrixTest, ProvisionIsPairwiseConsistent) {
  KeyMatrix matrix(5);
  auto a = std::make_shared<KeyStore>();
  auto b = std::make_shared<KeyStore>();
  auto c = std::make_shared<KeyStore>();
  matrix.provision({{MachineId(1), a}, {MachineId(2), b}, {MachineId(3), c}});
  // M[a][b]: a's tx key for b equals b's rx key for a, for every pair.
  EXPECT_EQ(a->tx(MachineId(2)), b->rx(MachineId(1)));
  EXPECT_EQ(b->tx(MachineId(1)), a->rx(MachineId(2)));
  EXPECT_EQ(a->tx(MachineId(3)), c->rx(MachineId(1)));
  EXPECT_EQ(c->tx(MachineId(2)), b->rx(MachineId(3)));
  // Distinct pairs get distinct keys.
  EXPECT_NE(a->tx(MachineId(2)), a->tx(MachineId(3)));
}

// ------------------------------------------------------------------ filter

struct FilterRig {
  FilterRig() {
    KeyMatrix matrix(9);
    matrix.provision({{MachineId(1), client_keys}, {MachineId(2), server_keys}});
  }
  std::shared_ptr<KeyStore> client_keys = std::make_shared<KeyStore>();
  std::shared_ptr<KeyStore> server_keys = std::make_shared<KeyStore>();
};

TEST(SealingFilterTest, OutgoingIncomingRoundTrip) {
  FilterRig rig;
  SealingFilter client(rig.client_keys, 1);
  SealingFilter server(rig.server_keys, 2);

  net::Message msg;
  msg.header.capability = sample_cap(3);
  const net::CapabilityBytes plain = msg.header.capability;
  client.outgoing(msg, MachineId(2));
  EXPECT_NE(msg.header.capability, plain);  // sealed on the wire
  ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  EXPECT_EQ(msg.header.capability, plain);
}

TEST(SealingFilterTest, BatchEnvelopeEntriesAreSealedToo) {
  // A batch frame carries per-entry capability images in the payload; the
  // filter must protect them exactly like a lone request's header slot --
  // otherwise batching (transfer_many, resolve_paths) would hand a
  // wiretapper cleartext capabilities.
  FilterRig rig;
  SealingFilter client(rig.client_keys, 1);
  SealingFilter server(rig.server_keys, 2);

  std::vector<rpc::BatchRequest> entries(3);
  entries[0].opcode = 7;
  entries[0].capability = sample_cap(4);
  entries[1].opcode = 8;  // null capability: must stay null
  entries[2].opcode = 9;
  entries[2].capability = sample_cap(5);
  net::Message msg;
  msg.header.opcode = rpc::kBatchOpcode;
  msg.header.flags |= net::kFlagBatch;
  msg.data = rpc::encode_batch(entries);

  client.outgoing(msg, MachineId(2));
  const auto on_wire = rpc::decode_batch_request(msg.data);
  ASSERT_TRUE(on_wire.has_value());
  EXPECT_NE((*on_wire)[0].capability, entries[0].capability);  // sealed
  EXPECT_EQ((*on_wire)[1].capability, entries[1].capability);  // null
  EXPECT_NE((*on_wire)[2].capability, entries[2].capability);
  EXPECT_NE((*on_wire)[0].capability, (*on_wire)[2].capability);

  ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  const auto arrived = rpc::decode_batch_request(msg.data);
  ASSERT_TRUE(arrived.has_value());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*arrived)[i].opcode, entries[i].opcode);
    EXPECT_EQ((*arrived)[i].capability, entries[i].capability);
  }
}

TEST(SealingFilterTest, BatchSealingComposesWithDataEncryption) {
  FilterRig rig;
  SealingFilter::Options options;
  options.encrypt_data = true;
  SealingFilter client(rig.client_keys, 1, options);
  SealingFilter server(rig.server_keys, 2, options);

  std::vector<rpc::BatchRequest> entries(1);
  entries[0].opcode = 1;
  entries[0].capability = sample_cap(6);
  entries[0].data = {1, 2, 3};
  net::Message msg;
  msg.header.flags |= net::kFlagBatch;
  msg.data = rpc::encode_batch(entries);

  client.outgoing(msg, MachineId(2));
  // Encrypted payload: not even the envelope structure parses on the wire.
  EXPECT_FALSE(rpc::decode_batch_request(msg.data).has_value());
  ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  const auto arrived = rpc::decode_batch_request(msg.data);
  ASSERT_TRUE(arrived.has_value());
  EXPECT_EQ((*arrived)[0].capability, entries[0].capability);
  EXPECT_EQ((*arrived)[0].data, entries[0].data);
}

TEST(SealingFilterTest, NullCapabilityPassesUntouched) {
  FilterRig rig;
  SealingFilter client(rig.client_keys, 1);
  net::Message msg;  // all-zero capability
  client.outgoing(msg, MachineId(2));
  EXPECT_EQ(msg.header.capability, net::CapabilityBytes{});
}

TEST(SealingFilterTest, ReplayFromOtherMachineDecryptsToGarbage) {
  // The §2.4 core defense: intruder I captures C->S traffic and plays it
  // back; S decrypts with M[I][S] instead of M[C][S] and the capability
  // makes no sense.
  FilterRig rig;
  auto intruder_keys = std::make_shared<KeyStore>();
  KeyMatrix matrix(10);
  matrix.provision({{MachineId(1), rig.client_keys},
                    {MachineId(2), rig.server_keys},
                    {MachineId(3), intruder_keys}});
  SealingFilter client(rig.client_keys, 1);
  SealingFilter server(rig.server_keys, 2);

  net::Message msg;
  msg.header.capability = sample_cap(4);
  const net::CapabilityBytes plain = msg.header.capability;
  client.outgoing(msg, MachineId(2));
  const net::Message captured = msg;  // wiretap copy

  // Replayed with the intruder's (unforgeable) source address.
  net::Message replayed = captured;
  ASSERT_TRUE(server.incoming(replayed, MachineId(3)));
  EXPECT_NE(replayed.header.capability, plain);  // gibberish, not the cap
}

TEST(SealingFilterTest, MissingRxKeyReportsFailure) {
  FilterRig rig;
  SealingFilter server(rig.server_keys, 2);
  net::Message msg;
  msg.header.capability = sample_cap(5);
  EXPECT_FALSE(server.incoming(msg, MachineId(99)));
  EXPECT_EQ(server.stats().missing_key_failures, 1u);
}

TEST(SealingFilterTest, CachesAvoidRepeatedEncryption) {
  FilterRig rig;
  SealingFilter client(rig.client_keys, 1);
  SealingFilter server(rig.server_keys, 2);

  for (int i = 0; i < 10; ++i) {
    net::Message msg;
    msg.header.capability = sample_cap(6);  // same capability every time
    client.outgoing(msg, MachineId(2));
    ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  }
  EXPECT_EQ(client.stats().seal_cache_misses, 1u);
  EXPECT_EQ(client.stats().seal_cache_hits, 9u);
  EXPECT_EQ(server.stats().unseal_cache_misses, 1u);
  EXPECT_EQ(server.stats().unseal_cache_hits, 9u);
}

TEST(SealingFilterTest, CacheDisabledStillCorrect) {
  FilterRig rig;
  SealingFilter::Options opts;
  opts.cache_enabled = false;
  SealingFilter client(rig.client_keys, 1, opts);
  SealingFilter server(rig.server_keys, 2, opts);
  net::Message msg;
  msg.header.capability = sample_cap(7);
  const auto plain = msg.header.capability;
  client.outgoing(msg, MachineId(2));
  ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  EXPECT_EQ(msg.header.capability, plain);
  EXPECT_EQ(client.stats().seal_cache_hits, 0u);
}

TEST(SealingFilterTest, DataEncryptionRoundTrips) {
  FilterRig rig;
  SealingFilter::Options opts;
  opts.encrypt_data = true;
  SealingFilter client(rig.client_keys, 1, opts);
  SealingFilter server(rig.server_keys, 2, opts);
  net::Message msg;
  msg.data = {'s', 'e', 'c', 'r', 'e', 't'};
  const Buffer plain = msg.data;
  client.outgoing(msg, MachineId(2));
  EXPECT_NE(msg.data, plain);
  ASSERT_TRUE(server.incoming(msg, MachineId(1)));
  EXPECT_EQ(msg.data, plain);
}

// --------------------------------------------------------------- handshake

TEST(Announcement, EncodeDecodeRoundTrip) {
  const Announcement a{Port(0x1234), {12345678901234567ULL, 65537}};
  const auto decoded = decode_announcement(encode_announcement(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().boot_put_port, a.boot_put_port);
  EXPECT_EQ(decoded.value().public_key.n, a.public_key.n);
  EXPECT_EQ(decoded.value().public_key.e, a.public_key.e);
  EXPECT_FALSE(decode_announcement(Buffer{1, 2}).ok());
}

struct BootRig {
  BootRig()
      : server_machine(net.add_machine("server")),
        client_machine(net.add_machine("client")),
        server_keys(std::make_shared<KeyStore>()),
        client_keys(std::make_shared<KeyStore>()),
        boot(server_machine, Port(0xB001), server_keys, 42) {
    boot.start();
  }

  net::Network net{net::Network::Config{.fbox_enabled = false}};
  net::Machine& server_machine;
  net::Machine& client_machine;
  std::shared_ptr<KeyStore> server_keys;
  std::shared_ptr<KeyStore> client_keys;
  BootService boot;
};

TEST(HandshakeTest, EstablishesConsistentKeys) {
  BootRig rig;
  Rng rng(7);
  const auto result =
      establish_keys(rig.client_machine, rig.boot.put_port(),
                     rig.boot.public_key(), *rig.client_keys, rng);
  ASSERT_TRUE(result.ok());
  // Client tx == server rx and vice versa.
  EXPECT_EQ(rig.client_keys->tx(rig.server_machine.id()),
            rig.server_keys->rx(rig.client_machine.id()));
  EXPECT_EQ(rig.client_keys->rx(rig.server_machine.id()),
            rig.server_keys->tx(rig.client_machine.id()));
}

TEST(HandshakeTest, FreshKeysPerHandshake) {
  BootRig rig;
  Rng rng(8);
  ASSERT_TRUE(establish_keys(rig.client_machine, rig.boot.put_port(),
                             rig.boot.public_key(), *rig.client_keys, rng)
                  .ok());
  const auto k1 = rig.client_keys->tx(rig.server_machine.id());
  const auto r1 = rig.client_keys->rx(rig.server_machine.id());
  ASSERT_TRUE(establish_keys(rig.client_machine, rig.boot.put_port(),
                             rig.boot.public_key(), *rig.client_keys, rng)
                  .ok());
  EXPECT_NE(rig.client_keys->tx(rig.server_machine.id()), k1);
  EXPECT_NE(rig.client_keys->rx(rig.server_machine.id()), r1);
}

TEST(HandshakeTest, ImpostorWithoutPrivateKeyRejected) {
  BootRig rig;
  // An impostor boot service with its own keypair, squatting on a port the
  // client believes belongs to the real server's published public key.
  auto impostor_keys = std::make_shared<KeyStore>();
  BootService impostor(rig.net.add_machine("impostor"), Port(0xBAD),
                       impostor_keys, 666);
  impostor.start();
  Rng rng(9);
  const auto result =
      establish_keys(rig.client_machine, impostor.put_port(),
                     rig.boot.public_key(),  // expecting the REAL key
                     *rig.client_keys, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ErrorCode::unsealing_failed);
  EXPECT_FALSE(rig.client_keys->tx(MachineId(3)).has_value());
}

TEST(HandshakeTest, RebootInvalidatesOldTrafficUntilRehandshake) {
  BootRig rig;
  Rng rng(10);
  ASSERT_TRUE(establish_keys(rig.client_machine, rig.boot.put_port(),
                             rig.boot.public_key(), *rig.client_keys, rng)
                  .ok());
  // Seal a capability under the pre-reboot keys (a wiretap capture).
  SealingFilter client(rig.client_keys, 1);
  net::Message captured;
  captured.header.capability = sample_cap(8);
  const auto plain = captured.header.capability;
  client.outgoing(captured, rig.server_machine.id());

  rig.boot.reboot();

  // Server has no keys at all now: traffic from the client is unreadable.
  SealingFilter server(rig.server_keys, 2);
  net::Message replay = captured;
  EXPECT_FALSE(server.incoming(replay, rig.client_machine.id()));

  // Client re-handshakes; new conventional keys are chosen.
  ASSERT_TRUE(establish_keys(rig.client_machine, rig.boot.put_port(),
                             rig.boot.public_key(), *rig.client_keys, rng)
                  .ok());
  // The captured pre-reboot ciphertext decrypts to garbage under the new
  // keys -- "the use of different conventional keys after each reboot
  // makes it impossible ... by playing back old messages."
  net::Message stale = captured;
  ASSERT_TRUE(server.incoming(stale, rig.client_machine.id()));
  EXPECT_NE(stale.header.capability, plain);
  // Fresh traffic under the new keys works.
  net::Message fresh;
  fresh.header.capability = plain;
  client.outgoing(fresh, rig.server_machine.id());
  ASSERT_TRUE(server.incoming(fresh, rig.client_machine.id()));
  EXPECT_EQ(fresh.header.capability, plain);
}

TEST(HandshakeTest, AnnouncementBroadcastReachesListeners) {
  BootRig rig;
  net::Receiver listener = rig.client_machine.listen(kAnnounceGetPort);
  rig.boot.announce();
  auto delivery = listener.receive({}, 500ms);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->message.header.opcode, kOpAnnounce);
  const auto announcement = decode_announcement(delivery->message.data);
  ASSERT_TRUE(announcement.ok());
  EXPECT_EQ(announcement.value().boot_put_port, rig.boot.put_port());
  EXPECT_EQ(announcement.value().public_key.n, rig.boot.public_key().n);
}

// -------------------------------------------- end-to-end sealed RPC stack

class CapEchoService final : public rpc::Service {
 public:
  using rpc::Service::Service;
  ~CapEchoService() override { stop(); }  // workers quiesce before vptr reset

 protected:
  net::Message handle(const net::Delivery& request) override {
    // Echo the (unsealed-by-filter) capability back in the reply.
    net::Message reply = net::make_reply(request.message, ErrorCode::ok);
    reply.header.capability = request.message.header.capability;
    return reply;
  }
};

TEST(SealedRpc, EndToEndSealUnsealThroughTransportAndService) {
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  auto server_keys = std::make_shared<KeyStore>();
  auto client_keys = std::make_shared<KeyStore>();
  KeyMatrix matrix(11);
  matrix.provision({{sm.id(), server_keys}, {cm.id(), client_keys}});

  CapEchoService service(sm, Port(0x2001), "cap-echo");
  service.set_filter(std::make_shared<SealingFilter>(server_keys, 1));
  service.start();
  rpc::Transport transport(cm, 1);
  transport.set_filter(std::make_shared<SealingFilter>(client_keys, 2));

  net::Message req;
  req.header.dest = service.put_port();
  req.header.capability = sample_cap(9);

  // On the wire the capability must be ciphertext.
  net::CapabilityBytes on_wire{};
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data && rec.dst == sm.id()) {
      on_wire = rec.message.header.capability;
    }
  });
  const auto reply = transport.trans(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.capability, sample_cap(9));
  EXPECT_NE(on_wire, sample_cap(9));
}

TEST(SealedRpc, UnkeyedClientGetsGarbageOrFailure) {
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  auto server_keys = std::make_shared<KeyStore>();

  CapEchoService service(sm, Port(0x2002), "cap-echo");
  service.set_filter(std::make_shared<SealingFilter>(server_keys, 1));
  service.start();
  rpc::Transport transport(cm, 1);  // no filter, no keys

  net::Message req;
  req.header.dest = service.put_port();
  req.header.capability = sample_cap(10);
  const auto reply = transport.trans(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.status, ErrorCode::unsealing_failed);
}

}  // namespace
}  // namespace amoeba::softprot
