// Unit and property tests for the crypto substrate: Feistel round trips
// and avalanche, modular math, one-way functions, the commutative family's
// algebra, and toy RSA.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/crypto/commutative.hpp"
#include "amoeba/crypto/feistel.hpp"
#include "amoeba/crypto/modmath.hpp"
#include "amoeba/crypto/one_way.hpp"
#include "amoeba/crypto/rsa.hpp"

namespace amoeba::crypto {
namespace {

// ---------------------------------------------------------------- modmath

TEST(ModMath, MulModMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 9, 10), 3u);
  EXPECT_EQ(mulmod(0, 12345, 97), 0u);
  // Near-overflow case: (2^63)^2 mod (2^64 - 59).
  const std::uint64_t big = 1ULL << 63;
  const std::uint64_t p = 18446744073709551557ULL;
  EXPECT_EQ(mulmod(big, big, p),
            static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(big) * big) % p));
}

TEST(ModMath, PowModBasics) {
  EXPECT_EQ(powmod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(powmod(5, 0, 13), 1u);
  EXPECT_EQ(powmod(5, 3, 1), 0u);
  // Fermat: a^(p-1) = 1 mod p.
  const std::uint64_t p = 1000000007;
  EXPECT_EQ(powmod(123456789, p - 1, p), 1u);
}

TEST(ModMath, IsPrimeKnownValues) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_TRUE(is_prime(97));
  EXPECT_TRUE(is_prime(1000000007));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // 2^64 - 59
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(4));
  EXPECT_FALSE(is_prime(1000000007ULL * 3));
  // Carmichael numbers must not fool the deterministic bases.
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(1105));
  EXPECT_FALSE(is_prime(825265));
}

TEST(ModMath, GcdAndModInv) {
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(17, 5), 1u);
  EXPECT_EQ(gcd(0, 7), 7u);
  const std::uint64_t inv = modinv(3, 11);
  EXPECT_EQ(mulmod(3, inv, 11), 1u);
  EXPECT_EQ(modinv(6, 12), 0u);  // not coprime
  // Large modulus round trip.
  const std::uint64_t m = 18446744073709551557ULL;
  const std::uint64_t a = 0x0123456789ABCDEFULL % m;
  EXPECT_EQ(mulmod(a, modinv(a, m), m), 1u);
}

// ---------------------------------------------------------------- feistel

class FeistelWidths : public ::testing::TestWithParam<int> {};

TEST_P(FeistelWidths, EncryptDecryptRoundTrip) {
  const int width = GetParam();
  Rng rng(width);
  for (int trial = 0; trial < 200; ++trial) {
    const Feistel cipher(rng.next(), width);
    const std::uint64_t plain = rng.bits(width);
    const std::uint64_t ct = cipher.encrypt(plain);
    EXPECT_EQ(cipher.decrypt(ct), plain);
    if (width < 64) {
      EXPECT_EQ(ct >> width, 0u) << "ciphertext escaped the block width";
    }
  }
}

TEST_P(FeistelWidths, EncryptionIsAPermutation) {
  const int width = GetParam();
  const Feistel cipher(0x1234, width);
  Rng rng(99);
  std::set<std::uint64_t> outputs;
  constexpr int kSamples = 500;
  std::set<std::uint64_t> inputs;
  while (inputs.size() < kSamples) {
    inputs.insert(rng.bits(width));
  }
  for (const auto in : inputs) {
    outputs.insert(cipher.encrypt(in));
  }
  EXPECT_EQ(outputs.size(), inputs.size());  // injective on the sample
}

TEST_P(FeistelWidths, AvalancheOnPlaintextBitFlips) {
  const int width = GetParam();
  Rng rng(width * 31 + 1);
  double total_ratio = 0;
  int cases = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Feistel cipher(rng.next(), width);
    const std::uint64_t plain = rng.bits(width);
    const std::uint64_t base = cipher.encrypt(plain);
    for (int bit = 0; bit < width; ++bit) {
      const std::uint64_t flipped = cipher.encrypt(plain ^ (1ULL << bit));
      total_ratio += static_cast<double>(std::popcount(base ^ flipped)) /
                     width;
      ++cases;
    }
  }
  const double mean = total_ratio / cases;
  // "An encryption function that mixes the bits thoroughly is required."
  EXPECT_GT(mean, 0.45);
  EXPECT_LT(mean, 0.55);
}

TEST_P(FeistelWidths, AvalancheOnKeyBitFlips) {
  const int width = GetParam();
  Rng rng(width * 17 + 3);
  double total_ratio = 0;
  int cases = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t key = rng.next();
    const std::uint64_t plain = rng.bits(width);
    const std::uint64_t base = Feistel(key, width).encrypt(plain);
    for (int bit = 0; bit < 64; bit += 3) {
      const std::uint64_t other =
          Feistel(key ^ (1ULL << bit), width).encrypt(plain);
      total_ratio += static_cast<double>(std::popcount(base ^ other)) / width;
      ++cases;
    }
  }
  EXPECT_GT(total_ratio / cases, 0.45);
  EXPECT_LT(total_ratio / cases, 0.55);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FeistelWidths,
                         ::testing::Values(16, 24, 32, 40, 48, 56, 64));

TEST(FeistelTest, RejectsBadWidthsAndOversizedInput) {
  EXPECT_THROW(Feistel(1, 15), UsageError);
  EXPECT_THROW(Feistel(1, 14), UsageError);
  EXPECT_THROW(Feistel(1, 66), UsageError);
  const Feistel cipher(1, 16);
  EXPECT_THROW((void)cipher.encrypt(1ULL << 16), UsageError);
  EXPECT_THROW((void)cipher.decrypt(1ULL << 20), UsageError);
}

TEST(FeistelTest, XorWithConstantWouldNotSurviveThisTest) {
  // Sanity check on the avalanche requirement: flipping one plaintext bit
  // must not flip exactly one ciphertext bit (which XOR-with-constant
  // would do).  Guards against regressions to trivial "encryption".
  const Feistel cipher(42, 56);
  const std::uint64_t a = cipher.encrypt(0x00FF00FF00FF00ULL & ((1ULL<<56)-1));
  const std::uint64_t b = cipher.encrypt((0x00FF00FF00FF00ULL ^ 1) & ((1ULL<<56)-1));
  EXPECT_GT(std::popcount(a ^ b), 8);
}

// --------------------------------------------------------------- one-way

TEST(OneWay, PurdyIsDeterministicAndInDomain) {
  const PurdyOneWay f;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.bits(48);
    const std::uint64_t y = f.apply_raw(x);
    EXPECT_EQ(y, f.apply_raw(x));
    EXPECT_EQ(y >> 48, 0u);
  }
}

TEST(OneWay, DaviesMeyerIsDeterministicAndInDomain) {
  const DaviesMeyerOneWay f;
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.bits(48);
    const std::uint64_t y = f.apply_raw(x);
    EXPECT_EQ(y, f.apply_raw(x));
    EXPECT_EQ(y >> 48, 0u);
  }
}

TEST(OneWay, RejectsOversizedInput) {
  EXPECT_THROW((void)PurdyOneWay().apply_raw(1ULL << 48), UsageError);
  EXPECT_THROW((void)DaviesMeyerOneWay().apply_raw(1ULL << 48), UsageError);
}

TEST(OneWay, FewCollisionsOnSample) {
  const PurdyOneWay purdy;
  const DaviesMeyerOneWay dm;
  Rng rng(13);
  std::set<std::uint64_t> purdy_out;
  std::set<std::uint64_t> dm_out;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t x = rng.bits(48);
    purdy_out.insert(purdy.apply_raw(x));
    dm_out.insert(dm.apply_raw(x));
  }
  // Collisions in 5000 draws from a 2^48 space are ~ birthday-impossible.
  EXPECT_GE(purdy_out.size(), kSamples - 2u);
  EXPECT_GE(dm_out.size(), kSamples - 2u);
}

TEST(OneWay, OutputLooksUniform) {
  // Each output bit should be ~50/50 across inputs; catches truncation or
  // folding bugs that bias the high bits.
  const PurdyOneWay f;
  int ones[48] = {};
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t y = f.apply_raw(static_cast<std::uint64_t>(i) * 977);
    for (int b = 0; b < 48; ++b) {
      ones[b] += (y >> b) & 1;
    }
  }
  for (int b = 0; b < 48; ++b) {
    EXPECT_GT(ones[b], kSamples * 0.44) << "bit " << b;
    EXPECT_LT(ones[b], kSamples * 0.56) << "bit " << b;
  }
}

TEST(OneWay, DistinctTweaksGiveDistinctFunctions) {
  const PurdyOneWay f1(1);
  const PurdyOneWay f2(2);
  int differing = 0;
  for (std::uint64_t x = 0; x < 64; ++x) {
    differing += (f1.apply_raw(x) != f2.apply_raw(x));
  }
  EXPECT_GE(differing, 63);
}

TEST(OneWay, PreimageSearchFailsOnSubsampledDomain) {
  // Black-box inversion try: guess 2^16 preimages for a target in a 48-bit
  // space; expected hits ~ 2^-32 * 2^16 = 2^-16 ~ 0.
  const PurdyOneWay f;
  const std::uint64_t target = f.apply_raw(0x123456789ABCULL & ((1ULL<<48)-1));
  Rng rng(14);
  int hits = 0;
  for (int i = 0; i < (1 << 16); ++i) {
    const std::uint64_t guess = rng.bits(48);
    if (guess != 0x123456789ABCULL && f.apply_raw(guess) == target) {
      ++hits;
    }
  }
  EXPECT_EQ(hits, 0);
}

TEST(OneWay, DefaultInstanceIsSharedAndStable) {
  const auto a = default_one_way();
  const auto b = default_one_way();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->apply_raw(42), b->apply_raw(42));
}

// ----------------------------------------------------------- commutative

TEST(Commutative, ModulusFits48Bits) {
  Rng rng(20);
  const CommutativeFamily fam(rng);
  EXPECT_EQ(fam.modulus() >> 48, 0u);
  EXPECT_GT(fam.modulus(), 1ULL << 45);
}

TEST(Commutative, AllPairsCommute) {
  Rng rng(21);
  const CommutativeFamily fam(rng);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = fam.random_element(rng);
    for (int j = 0; j < CommutativeFamily::kFunctions; ++j) {
      for (int k = 0; k < CommutativeFamily::kFunctions; ++k) {
        EXPECT_EQ(fam.apply(j, fam.apply(k, x)), fam.apply(k, fam.apply(j, x)))
            << "F_" << j << " and F_" << k << " must commute";
      }
    }
  }
}

TEST(Commutative, ApplyForClearedMatchesManualFold) {
  Rng rng(22);
  const CommutativeFamily fam(rng);
  const std::uint64_t x = fam.random_element(rng);
  // remaining = 0b10100101: cleared bits are 1,3,4,6.
  const Rights remaining(0xA5);
  std::uint64_t manual = x;
  for (int k : {1, 3, 4, 6}) {
    manual = fam.apply(k, manual);
  }
  EXPECT_EQ(fam.apply_for_cleared(remaining, x), manual);
}

TEST(Commutative, ApplyForClearedOrderIndependent) {
  Rng rng(23);
  const CommutativeFamily fam(rng);
  const std::uint64_t x = fam.random_element(rng);
  // Apply in two different manual orders; both must equal the fold.
  std::uint64_t forward = x;
  for (int k : {0, 2, 5}) forward = fam.apply(k, forward);
  std::uint64_t backward = x;
  for (int k : {5, 2, 0}) backward = fam.apply(k, backward);
  EXPECT_EQ(forward, backward);
}

TEST(Commutative, FunctionsAreDistinct) {
  Rng rng(24);
  const CommutativeFamily fam(rng);
  const std::uint64_t x = fam.random_element(rng);
  std::set<std::uint64_t> images;
  for (int k = 0; k < CommutativeFamily::kFunctions; ++k) {
    images.insert(fam.apply(k, x));
  }
  EXPECT_EQ(images.size(),
            static_cast<std::size_t>(CommutativeFamily::kFunctions));
}

TEST(Commutative, PublicReconstructionMatches) {
  Rng rng(25);
  const CommutativeFamily server(rng);
  const CommutativeFamily client(server.modulus(), server.exponents());
  const std::uint64_t x = 0x1234567 % server.modulus();
  for (int k = 0; k < CommutativeFamily::kFunctions; ++k) {
    EXPECT_EQ(server.apply(k, x), client.apply(k, x));
  }
}

TEST(Commutative, RandomElementSkipsFixedPoints) {
  Rng rng(26);
  const CommutativeFamily fam(rng);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = fam.random_element(rng);
    EXPECT_GE(x, 2u);
    EXPECT_LT(x, fam.modulus());
  }
}

TEST(Commutative, RejectsBadIndicesAndModulus) {
  Rng rng(27);
  const CommutativeFamily fam(rng);
  EXPECT_THROW((void)fam.apply(-1, 5), UsageError);
  EXPECT_THROW((void)fam.apply(CommutativeFamily::kFunctions, 5), UsageError);
  std::array<std::uint64_t, CommutativeFamily::kFunctions> exps{};
  EXPECT_THROW(CommutativeFamily(1ULL << 50, exps), UsageError);
}

// ------------------------------------------------------------------- rsa

TEST(RsaTest, BlockRoundTrip) {
  Rng rng(30);
  const RsaKeyPair kp = rsa_generate(rng);
  EXPECT_GT(kp.pub.n, 1ULL << 59);
  for (std::uint64_t m : {0ULL, 1ULL, 0xDEADBEEFULL, (1ULL << 32) - 1}) {
    const std::uint64_t c = rsa_apply_block(kp.pub.n, kp.pub.e, m);
    EXPECT_EQ(rsa_apply_block(kp.priv.n, kp.priv.d, c), m);
  }
}

TEST(RsaTest, SignVerifyRoundTrip) {
  Rng rng(31);
  const RsaKeyPair kp = rsa_generate(rng);
  const std::uint64_t digest = 0x1337;
  const std::uint64_t sig = rsa_apply_block(kp.priv.n, kp.priv.d, digest);
  EXPECT_EQ(rsa_apply_block(kp.pub.n, kp.pub.e, sig), digest);
}

TEST(RsaTest, BufferWrapUnwrapAllSizes) {
  Rng rng(32);
  const RsaKeyPair kp = rsa_generate(rng);
  for (std::size_t len : {0u, 1u, 3u, 4u, 5u, 16u, 33u, 100u}) {
    Buffer plain(len);
    rng.fill(plain);
    const Buffer sealed = rsa_wrap(kp.pub.n, kp.pub.e, plain);
    const auto opened = rsa_unwrap(kp.priv.n, kp.priv.d, sealed);
    ASSERT_TRUE(opened.has_value()) << "len " << len;
    EXPECT_EQ(*opened, plain);
  }
}

TEST(RsaTest, WrongKeyFailsToUnwrap) {
  Rng rng(33);
  const RsaKeyPair kp1 = rsa_generate(rng);
  const RsaKeyPair kp2 = rsa_generate(rng);
  Buffer plain(32);
  rng.fill(plain);
  const Buffer sealed = rsa_wrap(kp1.pub.n, kp1.pub.e, plain);
  const auto opened = rsa_unwrap(kp2.priv.n, kp2.priv.d, sealed);
  // Either unwrap detects garbage (overwhelmingly likely) or yields bytes
  // that differ from the plaintext.
  if (opened.has_value()) {
    EXPECT_NE(*opened, plain);
  } else {
    SUCCEED();
  }
}

TEST(RsaTest, TamperedCiphertextDetectedOrCorrupted) {
  Rng rng(34);
  const RsaKeyPair kp = rsa_generate(rng);
  Buffer plain(16);
  rng.fill(plain);
  Buffer sealed = rsa_wrap(kp.pub.n, kp.pub.e, plain);
  sealed[6] ^= 0x40;  // flip a bit inside the first cipher block
  const auto opened = rsa_unwrap(kp.priv.n, kp.priv.d, sealed);
  if (opened.has_value()) {
    EXPECT_NE(*opened, plain);
  }
}

TEST(RsaTest, MalformedBufferRejected) {
  Rng rng(35);
  const RsaKeyPair kp = rsa_generate(rng);
  EXPECT_FALSE(rsa_unwrap(kp.priv.n, kp.priv.d, Buffer{1, 2, 3}).has_value());
  // Length header promising more blocks than present.
  Writer w;
  w.u32(100);
  EXPECT_FALSE(rsa_unwrap(kp.priv.n, kp.priv.d, w.buffer()).has_value());
}

TEST(RsaTest, OversizedBlockThrows) {
  Rng rng(36);
  const RsaKeyPair kp = rsa_generate(rng);
  EXPECT_THROW((void)rsa_apply_block(kp.pub.n, kp.pub.e, kp.pub.n),
               UsageError);
}

}  // namespace
}  // namespace amoeba::crypto
