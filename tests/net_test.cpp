// Tests for the simulated LAN and F-box layer: GET/PUT semantics, the
// one-way port transformation, wire visibility (taps), source stamping,
// broadcast, locate, and fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "amoeba/common/epoch.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/crypto/one_way.hpp"
#include "amoeba/net/network.hpp"
#include "test_seed.hpp"

namespace amoeba::net {
namespace {

using namespace std::chrono_literals;

// Fault-dice seed for this suite; override with AMOEBA_TEST_SEED.
std::uint64_t fault_seed() { return amoeba::test::seed_base(9); }

Message make_data(Port dest, std::uint16_t opcode) {
  Message m;
  m.header.dest = dest;
  m.header.opcode = opcode;
  return m;
}

TEST(FBoxTest, ListenPortAppliesF) {
  Network net;
  Machine& m = net.add_machine("server");
  const Port get_port(0x1234);
  Receiver r = m.listen(get_port);
  EXPECT_EQ(r.put_port(), m.fbox().listen_port(get_port));
  EXPECT_EQ(r.put_port(), m.fbox().f().apply(get_port));
  EXPECT_NE(r.put_port(), get_port);
}

TEST(FBoxTest, PutToFBoxPortReachesGetter) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  const Port g(0xAAAA);
  Receiver r = server.listen(g);
  ASSERT_TRUE(client.transmit(make_data(r.put_port(), 7), server.id()));
  auto d = r.receive({}, 500ms);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->message.header.opcode, 7);
  EXPECT_EQ(d->src, client.id());  // source is stamped, not chosen
}

TEST(FBoxTest, PutToGetPortItselfIsRejected) {
  // Nobody listens on G itself in F-box mode: the registration is on F(G).
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  const Port g(0xBBBB);
  Receiver r = server.listen(g);
  ASSERT_NE(r.put_port(), g);
  EXPECT_FALSE(client.transmit(make_data(g, 1), server.id()));
}

TEST(FBoxTest, IntruderGetOnPutPortListensOnUselessPort) {
  // "An intruder doing GET(P) will simply cause his F-box to listen to
  // the (useless) port F(P)."
  Network net;
  Machine& server = net.add_machine("server");
  Machine& intruder = net.add_machine("intruder");
  Machine& client = net.add_machine("client");
  const Port g(0xCCCC);
  Receiver real = server.listen(g);
  const Port p = real.put_port();
  Receiver fake = intruder.listen(p);  // intruder tries GET(P)
  EXPECT_NE(fake.put_port(), p);       // listening on F(P), not P
  // Client's message goes to the true server, never the intruder.
  ASSERT_TRUE(client.transmit(make_data(p, 9), server.id()));
  EXPECT_TRUE(real.receive({}, 500ms).has_value());
  EXPECT_FALSE(fake.receive({}, 50ms).has_value());
}

TEST(FBoxTest, ReplyAndSignatureFieldsTransformedOnWire) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  const Port g(0xDDDD);
  Receiver r = server.listen(g);

  std::vector<TapRecord> wire;
  TapHandle tap = net.attach_tap([&](const TapRecord& rec) {
    if (rec.kind == FrameKind::data) wire.push_back(rec);
  });

  const Port reply_get(0x1111);
  const Port signature(0x2222);
  Message msg = make_data(r.put_port(), 1);
  msg.header.reply = reply_get;
  msg.header.signature = signature;
  ASSERT_TRUE(client.transmit(msg, server.id()));

  ASSERT_EQ(wire.size(), 1u);
  const auto& f = client.fbox().f();
  // Destination passes through untransformed; reply and signature get F.
  EXPECT_EQ(wire[0].message.header.dest, r.put_port());
  EXPECT_EQ(wire[0].message.header.reply, f.apply(reply_get));
  EXPECT_EQ(wire[0].message.header.signature, f.apply(signature));
  // The receiving process also sees only the transformed values: the
  // secret get-port never crosses the wire.
  auto d = r.receive({}, 500ms);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->message.header.reply, f.apply(reply_get));
  EXPECT_NE(d->message.header.reply, reply_get);
}

TEST(FBoxTest, DisabledModeIsTransparent) {
  Network net(Network::Config{.fbox_enabled = false});
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  const Port g(0xEEEE);
  Receiver r = server.listen(g);
  EXPECT_EQ(r.put_port(), g);  // no transformation
  Message msg = make_data(g, 2);
  msg.header.reply = Port(0x3333);
  ASSERT_TRUE(client.transmit(msg, server.id()));
  auto d = r.receive({}, 500ms);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->message.header.reply, Port(0x3333));
}

TEST(NetworkTest, TransmitToWrongMachineRejected) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& other = net.add_machine("other");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0x4444));
  EXPECT_FALSE(client.transmit(make_data(r.put_port(), 1), other.id()));
  EXPECT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
}

TEST(NetworkTest, ReceiverDestructionWithdrawsRegistration) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Port put;
  {
    Receiver r = server.listen(Port(0x5555));
    put = r.put_port();
    EXPECT_TRUE(client.transmit(make_data(put, 1), server.id()));
  }
  EXPECT_FALSE(client.transmit(make_data(put, 1), server.id()));
}

TEST(NetworkTest, RoundRobinAcrossMultipleGets) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  const Port g(0x6666);
  Receiver r1 = server.listen(g);
  Receiver r2 = server.listen(g);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.transmit(make_data(r1.put_port(), 1), server.id()));
  }
  int count1 = 0;
  int count2 = 0;
  while (r1.receive({}, 20ms).has_value()) ++count1;
  while (r2.receive({}, 20ms).has_value()) ++count2;
  EXPECT_EQ(count1, 2);
  EXPECT_EQ(count2, 2);
}

TEST(NetworkTest, BroadcastReachesAllListeners) {
  Network net;
  Machine& a = net.add_machine("a");
  Machine& b = net.add_machine("b");
  Machine& sender = net.add_machine("sender");
  const Port g(0x7777);
  Receiver ra = a.listen(g);
  Receiver rb = b.listen(g);
  sender.broadcast(make_data(ra.put_port(), 3));
  EXPECT_TRUE(ra.receive({}, 500ms).has_value());
  EXPECT_TRUE(rb.receive({}, 500ms).has_value());
}

TEST(NetworkTest, BroadcastDropFaultsRollPerReceiverLeg) {
  // Each broadcast leg is its own (src -> dst) link: a per-link drop on
  // sender->a loses the frame at a while b still receives it.
  Network net;
  Machine& a = net.add_machine("a");
  Machine& b = net.add_machine("b");
  Machine& sender = net.add_machine("sender");
  const Port g(0x7A01);
  Receiver ra = a.listen(g);
  Receiver rb = b.listen(g);
  net.set_link_faults(sender.id(), a.id(), {.drop = 1.0});
  sender.broadcast(make_data(ra.put_port(), 3));
  EXPECT_TRUE(rb.receive({}, 500ms).has_value());
  EXPECT_FALSE(ra.receive({}, 50ms).has_value());
  EXPECT_GE(net.stats().dropped.load(), 1u);
  net.clear_link_faults();
  // The link recovers: the next broadcast reaches both.
  sender.broadcast(make_data(ra.put_port(), 4));
  EXPECT_TRUE(ra.receive({}, 500ms).has_value());
  EXPECT_TRUE(rb.receive({}, 500ms).has_value());
}

TEST(NetworkTest, BroadcastReorderHoldsAndReleasesPerLink) {
  // Reorder on the sender->a leg only: a's first frame is held back and
  // released after the second, so a observes them swapped while b sees
  // transmission order.
  Network net;
  Machine& a = net.add_machine("a");
  Machine& b = net.add_machine("b");
  Machine& sender = net.add_machine("sender");
  const Port g(0x7A02);
  Receiver ra = a.listen(g);
  Receiver rb = b.listen(g);
  net.set_link_faults(sender.id(), a.id(), {.reorder = 1.0});
  sender.broadcast(make_data(ra.put_port(), 1));
  sender.broadcast(make_data(ra.put_port(), 2));
  net.clear_link_faults();  // releases anything still held
  const auto a1 = ra.receive({}, 500ms);
  const auto a2 = ra.receive({}, 500ms);
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a1->message.header.opcode, 2);
  EXPECT_EQ(a2->message.header.opcode, 1);
  const auto b1 = rb.receive({}, 500ms);
  const auto b2 = rb.receive({}, 500ms);
  ASSERT_TRUE(b1.has_value());
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b1->message.header.opcode, 1);
  EXPECT_EQ(b2->message.header.opcode, 2);
  EXPECT_GE(net.stats().reordered.load(), 1u);
}

TEST(NetworkTest, BroadcastDuplicateFaultDeliversTwicePerLeg) {
  Network net(
      Network::Config{.seed = fault_seed(), .duplicate_probability = 1.0});
  Machine& a = net.add_machine("a");
  Machine& b = net.add_machine("b");
  Machine& sender = net.add_machine("sender");
  const Port g(0x7A03);
  Receiver ra = a.listen(g);
  Receiver rb = b.listen(g);
  sender.broadcast(make_data(ra.put_port(), 5));
  // Every leg rolled its own duplication: two copies at each receiver.
  EXPECT_TRUE(ra.receive({}, 500ms).has_value());
  EXPECT_TRUE(ra.receive({}, 500ms).has_value());
  EXPECT_TRUE(rb.receive({}, 500ms).has_value());
  EXPECT_TRUE(rb.receive({}, 500ms).has_value());
  EXPECT_GE(net.stats().duplicated.load(), 2u);
}

TEST(NetworkTest, LocateFindsListenerAndMissesAbsent) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0x8888));
  EXPECT_EQ(client.locate(r.put_port()), server.id());
  EXPECT_FALSE(client.locate(Port(0x9999)).has_value());
  EXPECT_EQ(net.stats().locates.load(), 2u);
}

TEST(NetworkTest, LocateTracksMigration) {
  Network net;
  Machine& a = net.add_machine("a");
  Machine& b = net.add_machine("b");
  Machine& client = net.add_machine("client");
  const Port g(0xABCD);
  Port put;
  {
    Receiver ra = a.listen(g);
    put = ra.put_port();
    EXPECT_EQ(client.locate(put), a.id());
  }
  EXPECT_FALSE(client.locate(put).has_value());
  Receiver rb = b.listen(g);
  EXPECT_EQ(client.locate(put), b.id());
}

TEST(NetworkTest, DropFaultLosesFrames) {
  Network net(Network::Config{.seed = fault_seed(), .drop_probability = 1.0});
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0xAA11));
  // Link-level accept still true (sender can't detect a dropped frame).
  EXPECT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
  EXPECT_FALSE(r.receive({}, 50ms).has_value());
  EXPECT_GE(net.stats().dropped.load(), 1u);
}

TEST(NetworkTest, DuplicateFaultDeliversTwice) {
  Network net(
      Network::Config{.seed = fault_seed(), .duplicate_probability = 1.0});
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0xAA22));
  EXPECT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
  EXPECT_TRUE(r.receive({}, 500ms).has_value());
  EXPECT_TRUE(r.receive({}, 500ms).has_value());
}

TEST(NetworkTest, StatsCountTraffic) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0xAA33));
  ASSERT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
  EXPECT_FALSE(client.transmit(make_data(Port(0xDEAD), 1), server.id()));
  EXPECT_EQ(net.stats().unicasts.load(), 2u);
  EXPECT_EQ(net.stats().delivered.load(), 1u);
  EXPECT_EQ(net.stats().rejected.load(), 1u);
}

TEST(NetworkTest, TrafficPathTakesNoStripeLocks) {
  // The RCU conversion's checkable claim: fault-free transmit and locate
  // never acquire a stripe mutex (all stripe mutexes are CountedMutex, so
  // the thread-local acquisition counter would move if they did).
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0x1CEE));
  const auto& counters = common::this_thread_lock_counters();
  const std::uint64_t before = counters.mutex_acquisitions;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
    ASSERT_TRUE(client.locate(r.put_port()).has_value());
  }
  EXPECT_EQ(counters.mutex_acquisitions, before);
}

TEST(NetworkTest, RegistrationChurnNeverBlocksTraffic) {
  // A registration storm on neighboring ports must not perturb delivery
  // to a stable port: readers see immutable snapshots, so every transmit
  // during the churn is admitted and delivered (fault-free network).
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Machine& churner = net.add_machine("churner");
  Receiver stable = server.listen(Port(0x57AB));
  std::atomic<bool> stop{false};
  std::jthread churn([&] {
    std::uint64_t port = 1;
    while (!stop.load(std::memory_order_acquire)) {
      // Register and immediately withdraw GETs across many stripes,
      // including the stable port's own stripe (same port, different
      // receiver) -- the worst case for a reader-writer race.
      Receiver a = churner.listen(Port(0x57AB));
      Receiver b = churner.listen(Port(port++ & 0xFFFF));
    }
  });
  int delivered = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(client.transmit(make_data(stable.put_port(), 1), server.id()));
    delivered += stable.receive({}, 500ms).has_value() ? 1 : 0;
  }
  stop.store(true, std::memory_order_release);
  EXPECT_EQ(delivered, 500);
}

TEST(NetworkTest, TapSeesLocateTraffic) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0xAA44));
  int locate_requests = 0;
  int locate_replies = 0;
  TapHandle tap = net.attach_tap([&](const TapRecord& rec) {
    locate_requests += rec.kind == FrameKind::locate_request;
    locate_replies += rec.kind == FrameKind::locate_reply;
  });
  (void)client.locate(r.put_port());
  EXPECT_EQ(locate_requests, 1);
  EXPECT_EQ(locate_replies, 1);
}

TEST(NetworkTest, DetachedTapStopsObserving) {
  Network net;
  Machine& server = net.add_machine("server");
  Machine& client = net.add_machine("client");
  Receiver r = server.listen(Port(0xAA55));
  int seen = 0;
  {
    TapHandle tap = net.attach_tap([&](const TapRecord&) { ++seen; });
    ASSERT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
  }
  ASSERT_TRUE(client.transmit(make_data(r.put_port(), 1), server.id()));
  EXPECT_EQ(seen, 1);
}

TEST(MailboxTest, PopHonorsStopToken) {
  Mailbox box;
  std::stop_source source;
  std::jthread stopper([&] {
    std::this_thread::sleep_for(50ms);
    source.request_stop();
  });
  const auto result = box.pop(source.get_token());
  EXPECT_FALSE(result.has_value());
}

TEST(MailboxTest, CloseWakesWaiter) {
  Mailbox box;
  std::jthread closer([&] {
    std::this_thread::sleep_for(50ms);
    box.close();
  });
  EXPECT_FALSE(box.pop({}).has_value());
  EXPECT_TRUE(box.closed());
}

TEST(MailboxTest, PushAfterCloseDiscarded) {
  Mailbox box;
  box.close();
  box.push(Delivery{});
  EXPECT_EQ(box.size(), 0u);
}

}  // namespace
}  // namespace amoeba::net
