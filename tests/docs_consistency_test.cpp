// docs/PROTOCOL.md must not drift from the code: every opcode table row in
// the spec is checked, field for field, against the live descriptor
// registry (Service::registered_ops()) of every server, in both
// directions.  CI runs this test as the docs job; on mismatch it prints
// the table block the spec should contain, so regenerating the doc is a
// copy-paste.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/kernel/memory_server.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/replication.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/multiversion_server.hpp"
#include "amoeba/softprot/handshake.hpp"
#include "amoeba/softprot/keystore.hpp"

namespace amoeba {
namespace {

constexpr const char* kProtocolPath = AMOEBA_REPO_ROOT "/docs/PROTOCOL.md";

/// One parsed (or generated) opcode-table row, in the doc's column format:
/// | opcode | name | required rights | data rights | kind |
struct Row {
  std::uint16_t opcode = 0;
  std::string name;
  std::uint8_t required = 0;
  std::uint8_t data_rights = 0;
  bool object = true;

  [[nodiscard]] std::string render() const {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "| 0x%04X | `%s` | 0x%02X | 0x%02X | %s |", opcode,
                  name.c_str(), required, data_rights,
                  object ? "object" : "factory");
    return buffer;
  }

  friend bool operator==(const Row&, const Row&) = default;
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t`");
  const auto end = s.find_last_not_of(" \t`");
  return begin == std::string::npos ? "" : s.substr(begin, end - begin + 1);
}

/// Extracts every table row of the form `| 0x.. | name | 0x.. | 0x.. |
/// kind |` from the spec; anything else (prose, header rows, the frame
/// layout tables whose first column is not an 0x opcode) is skipped.
std::vector<Row> parse_spec(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| 0x", 0) != 0) {
      continue;
    }
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    (void)std::getline(ss, cell, '|');  // leading empty cell
    while (std::getline(ss, cell, '|')) {
      cells.push_back(trim(cell));
    }
    if (!cells.empty() && cells.back().empty()) {
      cells.pop_back();
    }
    if (cells.size() != 5 || (cells[4] != "object" && cells[4] != "factory")) {
      continue;  // an 0x-leading row of some other table shape
    }
    Row row;
    row.opcode =
        static_cast<std::uint16_t>(std::stoul(cells[0], nullptr, 16));
    row.name = cells[1];
    row.required =
        static_cast<std::uint8_t>(std::stoul(cells[2], nullptr, 16));
    row.data_rights =
        static_cast<std::uint8_t>(std::stoul(cells[3], nullptr, 16));
    row.object = cells[4] == "object";
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Stands every server up (constructors register the descriptors; no
/// workers needed) and unions their registries by opcode, demanding that
/// shared opcodes -- the std_* suite -- carry identical metadata
/// everywhere.
std::map<std::uint16_t, Row> live_registry() {
  net::Network net;
  net::Machine& m = net.add_machine("registry");
  Rng rng(7);
  const auto scheme = core::make_scheme(core::SchemeKind::commutative, rng);

  servers::BankServer bank(m, Port(0x0101), scheme, 1);
  servers::BlockServer block(m, Port(0x0102), scheme, 2, {});
  servers::DirectoryServer directory(m, Port(0x0103), scheme, 3);
  servers::FlatFileServer flatfile(m, Port(0x0104), scheme, 4, Port(0x0102));
  servers::MultiVersionServer multiversion(m, Port(0x0105), scheme, 5);
  kernel::MemoryServer memory(m, Port(0x0106), scheme, 6);
  softprot::BootService boot(m, Port(0x0107),
                             std::make_shared<softprot::KeyStore>(), 7);
  rpc::ReplicaServer replica(m, Port(0x0108), scheme, 8,
                             std::make_shared<storage::MemoryBackend>(16));
  const rpc::Service* services[] = {&bank,         &block,  &directory,
                                    &flatfile,     &multiversion, &memory,
                                    &boot,         &replica};

  std::map<std::uint16_t, Row> registry;
  for (const rpc::Service* service : services) {
    for (const rpc::OpInfo& op : service->registered_ops()) {
      const Row row{op.opcode, op.name, op.required.bits(),
                    op.data_rights.bits(), op.object};
      const auto [it, inserted] = registry.emplace(op.opcode, row);
      EXPECT_EQ(it->second, row)
          << "opcode 0x" << std::hex << op.opcode
          << " registered with conflicting metadata across servers";
    }
  }
  return registry;
}

TEST(DocsConsistency, ProtocolOpcodeTablesMatchRegisteredOps) {
  const auto registry = live_registry();
  ASSERT_FALSE(registry.empty());
  const auto spec_rows = parse_spec(kProtocolPath);

  std::map<std::uint16_t, Row> spec;
  for (const Row& row : spec_rows) {
    EXPECT_TRUE(spec.emplace(row.opcode, row).second)
        << "duplicate opcode row in PROTOCOL.md: " << row.render();
  }

  // What the spec's tables, concatenated and sorted by opcode, must be.
  std::string expected;
  for (const auto& [opcode, row] : registry) {
    expected += row.render() + "\n";
  }

  for (const auto& [opcode, row] : registry) {
    const auto it = spec.find(opcode);
    if (it == spec.end()) {
      ADD_FAILURE() << "PROTOCOL.md is missing a row for " << row.render()
                    << "\nfull expected table:\n"
                    << expected;
      continue;
    }
    EXPECT_EQ(it->second, row)
        << "PROTOCOL.md row drifted.\n  doc:  " << it->second.render()
        << "\n  code: " << row.render();
  }
  for (const auto& [opcode, row] : spec) {
    EXPECT_TRUE(registry.contains(opcode))
        << "PROTOCOL.md documents an opcode no server registers: "
        << row.render();
  }
}

TEST(DocsConsistency, ProtocolCoversTheAtMostOnceMachinery) {
  // The spec sections the README links to must exist (cheap guard against
  // renaming a heading without updating the cross-references).
  std::ifstream in(kProtocolPath);
  ASSERT_TRUE(in.good()) << "cannot open " << kProtocolPath;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  for (const char* needle :
       {"kFlagBatch", "kFlagAtMostOnce", "kFlagRetransmit", "client", "seq",
        "## 5", "reply cache", "0xFFFF"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "PROTOCOL.md lost required content: " << needle;
  }
}

}  // namespace
}  // namespace amoeba
