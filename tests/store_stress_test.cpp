// Concurrency tests for the sharded object store itself: parallel
// create/open/restrict/revoke/destroy must lose no slots, never validate a
// stale secret after revocation, and keep live_count() exact.  Also covers
// the multi-object openers (open2 / open_with_peek), the accessor-based
// destroy, and the validated-capability cache.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace amoeba::core {
namespace {

constexpr Port kPort{0x5A5A5A5A5A5AULL};

[[nodiscard]] ObjectStore<int> make_store(SchemeKind kind,
                                          std::uint64_t seed) {
  Rng rng(seed);
  return ObjectStore<int>(make_scheme(kind, rng), kPort, seed);
}

// ------------------------------------------------------ single-thread API

TEST(ShardedStore, ObjectNumbersAreDenseAndShardSpread) {
  auto store = make_store(SchemeKind::one_way_xor, 1);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Capability cap = store.create(static_cast<int>(i));
    EXPECT_EQ(cap.object.value(), i);  // sequential creates stay dense
  }
  EXPECT_EQ(store.live_count(), 100u);
}

TEST(ShardedStore, Open2LocksBothObjectsWhateverTheShards) {
  auto store = make_store(SchemeKind::one_way_xor, 2);
  // Same shard (object numbers 0 and 16 with 16 shards), different shards,
  // and identical objects must all work.
  std::vector<Capability> caps;
  for (int i = 0; i < 20; ++i) {
    caps.push_back(store.create(i));
  }
  const std::size_t n = store.shard_count();
  auto same_shard = store.open2(caps[0], Rights::none(),
                                caps[0 + n], Rights::none());
  ASSERT_TRUE(same_shard.ok());
  EXPECT_EQ(*same_shard.value().a.value, 0);
  EXPECT_EQ(*same_shard.value().b.value, static_cast<int>(n));
  same_shard = store.open2(caps[1], Rights::none(), caps[2], Rights::none());
  ASSERT_TRUE(same_shard.ok());
  auto self = store.open2(caps[3], Rights::none(), caps[3], Rights::none());
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value().a.value, self.value().b.value);
}

TEST(ShardedStore, Open2ValidatesFirstCapabilityFirst) {
  auto store = make_store(SchemeKind::one_way_xor, 3);
  const Capability good = store.create(1);
  Capability forged = store.create(2);
  forged.check = CheckField(forged.check.value() ^ 1);
  EXPECT_EQ(store.open2(forged, Rights::none(), good, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_EQ(store.open2(good, Rights::none(), forged, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_TRUE(store.open2(good, Rights::none(), good, Rights::none()).ok());
}

TEST(ShardedStore, OpenWithPeekSeesLiveAndDeadNeighbours) {
  auto store = make_store(SchemeKind::one_way_xor, 4);
  const Capability a = store.create(10);
  const Capability b = store.create(20);
  {
    auto both = store.open_with_peek(a, Rights::none(), b.object);
    ASSERT_TRUE(both.ok());
    EXPECT_EQ(*both.value().opened.value, 10);
    ASSERT_NE(both.value().peeked, nullptr);
    EXPECT_EQ(*both.value().peeked, 20);
  }  // locks released before the destroy below
  ASSERT_TRUE(store.destroy(b).ok());
  auto after = store.open_with_peek(a, Rights::none(), b.object);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().peeked, nullptr);
}

TEST(ShardedStore, DestroyThroughAccessorChecksTheRight) {
  auto store = make_store(SchemeKind::one_way_xor, 5);
  const Capability cap = store.create(7);
  const auto read_only = store.restrict(cap, rights::kRead);
  ASSERT_TRUE(read_only.ok());
  {
    auto opened = store.open(read_only.value(), rights::kRead);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(store.destroy(std::move(opened.value())).error(),
              ErrorCode::permission_denied);
  }
  EXPECT_EQ(store.live_count(), 1u);
  {
    auto opened = store.open(cap, rights::kDestroy);
    ASSERT_TRUE(opened.ok());
    EXPECT_TRUE(store.destroy(std::move(opened.value())).ok());
  }
  EXPECT_EQ(store.live_count(), 0u);
}

// -------------------------------------------------- validated-cap cache

TEST(ShardedStore, RepeatOpensHitTheValidationCache) {
  auto store = make_store(SchemeKind::encrypted, 6);
  const Capability cap = store.create(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.open(cap, Rights::none()).ok());
  }
  const auto stats = store.cache_stats();
  EXPECT_GE(stats.hits, 49u);  // first open misses, the rest hit
}

TEST(ShardedStore, RevocationInvalidatesCachedValidations) {
  auto store = make_store(SchemeKind::encrypted, 7);
  const Capability cap = store.create(1);
  ASSERT_TRUE(store.open(cap, Rights::none()).ok());  // warm the cache
  ASSERT_TRUE(store.open(cap, Rights::none()).ok());
  const auto fresh = store.revoke(cap);
  ASSERT_TRUE(fresh.ok());
  // The cached entry for the old capability must not resurrect it.
  EXPECT_EQ(store.open(cap, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_TRUE(store.open(fresh.value(), Rights::none()).ok());
}

TEST(ShardedStore, SlotReuseInvalidatesCachedValidations) {
  auto store = make_store(SchemeKind::encrypted, 8);
  const Capability cap = store.create(1);
  ASSERT_TRUE(store.open(cap, Rights::none()).ok());  // warm the cache
  ASSERT_TRUE(store.destroy(cap).ok());
  const Capability reused = store.create(2);
  ASSERT_EQ(reused.object, cap.object);  // same number, fresh secret
  EXPECT_EQ(store.open(cap, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_EQ(*store.open(reused, Rights::none()).value().value, 2);
}

// --------------------------------------------------------- parallel storm

TEST(ShardedStoreStress, EightThreadsFullLifecycleKeepsInvariants) {
  auto store = make_store(SchemeKind::one_way_xor, 9);
  constexpr int kThreads = 8;
  constexpr int kStepsPerThread = 2000;
  std::atomic<int> anomalies{0};
  std::atomic<long> net_live{0};  // creations minus destructions

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 1000);
        // Thread-local working set: each thread owns the objects it made,
        // so destroys/revokes race only through the store internals.
        std::vector<Capability> mine;
        std::vector<Capability> revoked;
        for (int step = 0; step < kStepsPerThread; ++step) {
          const std::uint64_t op = rng.below(10);
          if (op < 4 || mine.empty()) {
            mine.push_back(store.create(t * 100000 + step));
            net_live.fetch_add(1);
          } else if (op < 7) {
            const auto& cap = mine[rng.below(mine.size())];
            auto opened = store.open(cap, Rights::none());
            if (!opened.ok()) {
              anomalies.fetch_add(1);  // own live capability must open
            }
          } else if (op < 8) {
            const std::size_t idx = rng.below(mine.size());
            auto fresh = store.revoke(mine[idx]);
            if (!fresh.ok()) {
              anomalies.fetch_add(1);
            } else {
              revoked.push_back(mine[idx]);
              mine[idx] = fresh.value();
            }
          } else if (op < 9) {
            const std::size_t idx = rng.below(mine.size());
            if (!store.destroy(mine[idx]).ok()) {
              anomalies.fetch_add(1);
            } else {
              net_live.fetch_sub(1);
            }
            mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(idx));
          } else if (!revoked.empty()) {
            // A revoked capability must never validate again, even while
            // other threads mutate the same shard.
            const auto& stale = revoked[rng.below(revoked.size())];
            if (store.open(stale, Rights::none()).ok()) {
              anomalies.fetch_add(1);
            }
          }
        }
        // Park the survivors: every capability this thread still holds
        // must open, and destroy must reclaim each slot exactly once.
        // (Two store calls in one full expression would keep the first
        // accessor's shard lock alive across the second -- separate
        // statements, as everywhere.)
        for (const auto& cap : mine) {
          const bool opens = store.open(cap, Rights::none()).ok();
          if (!opens || !store.destroy(cap).ok()) {
            anomalies.fetch_add(1);
          } else {
            net_live.fetch_sub(1);
          }
        }
      });
    }
  }

  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_EQ(net_live.load(), 0);
  EXPECT_EQ(store.live_count(), 0u);  // no lost slots
}

TEST(ShardedStoreStress, ParallelPairOpensDoNotDeadlock) {
  // Transfers in opposite directions across the same pair of objects, plus
  // pairs within one shard: the ordered two-shard locking must never
  // deadlock.  A run that completes is the assertion.
  auto store = make_store(SchemeKind::simple, 10);
  std::vector<Capability> caps;
  for (int i = 0; i < 32; ++i) {
    caps.push_back(store.create(i));
  }
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 77);
        for (int i = 0; i < 4000; ++i) {
          const auto& a = caps[rng.below(caps.size())];
          const auto& b = caps[rng.below(caps.size())];
          auto pair = store.open2(a, Rights::none(), b, Rights::none());
          if (!pair.ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace amoeba::core
