// Deterministic-seed plumbing for fault-injection suites.
//
// Every suite that rolls fault dice derives its RNG seeds from one base
// value.  The base is printed when first used, and AMOEBA_TEST_SEED
// overrides it -- so a CI failure log names the exact seed and
// `AMOEBA_TEST_SEED=<n> ./the_test` replays the identical fault schedule.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace amoeba::test {

/// The suite's seed base: AMOEBA_TEST_SEED when set, `fallback` otherwise.
/// Latched (and logged) on first call; later calls ignore their argument,
/// so one test binary has one reproducible base.
inline std::uint64_t seed_base(std::uint64_t fallback) {
  static const std::uint64_t chosen = [fallback] {
    const char* env = std::getenv("AMOEBA_TEST_SEED");
    const std::uint64_t value =
        env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 0)
                                       : fallback;
    std::fprintf(stderr,
                 "[amoeba] fault-injection seed base = %llu "
                 "(reproduce with AMOEBA_TEST_SEED=%llu)\n",
                 static_cast<unsigned long long>(value),
                 static_cast<unsigned long long>(value));
    return value;
  }();
  return chosen;
}

}  // namespace amoeba::test
