// Tests for the directory server (§3.4), including the transparent
// cross-server path walk the paper highlights.
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/block_server.hpp"

namespace amoeba::servers {
namespace {

class DirectorySuite : public ::testing::Test {
 protected:
  DirectorySuite()
      : machine_(net_.add_machine("dirserver")),
        client_machine_(net_.add_machine("client")),
        rng_(5) {
    const auto scheme = core::make_scheme(core::SchemeKind::commutative, rng_);
    server_ = std::make_unique<DirectoryServer>(machine_, Port(0xD1D1),
                                                scheme, 1);
    server_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 2);
    client_ = std::make_unique<DirectoryClient>(*transport_,
                                                server_->put_port());
  }

  core::Capability dummy_cap(std::uint32_t tag) const {
    return core::Capability{Port(0xFA15E0000000ULL + tag), ObjectNumber(tag),
                            Rights::all(), CheckField(tag * 7919)};
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<DirectoryServer> server_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<DirectoryClient> client_;
};

TEST_F(DirectorySuite, EnterLookupRemove) {
  const auto dir = client_->create_dir();
  ASSERT_TRUE(dir.ok());
  const core::Capability target = dummy_cap(1);
  ASSERT_TRUE(client_->enter(dir.value(), "readme", target).ok());
  const auto found = client_->lookup(dir.value(), "readme");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), target);
  ASSERT_TRUE(client_->remove(dir.value(), "readme").ok());
  EXPECT_EQ(client_->lookup(dir.value(), "readme").error(),
            ErrorCode::not_found);
}

TEST_F(DirectorySuite, DuplicateNameRejected) {
  const auto dir = client_->create_dir();
  ASSERT_TRUE(client_->enter(dir.value(), "x", dummy_cap(1)).ok());
  EXPECT_EQ(client_->enter(dir.value(), "x", dummy_cap(2)).error(),
            ErrorCode::exists);
}

TEST_F(DirectorySuite, EmptyNameRejected) {
  const auto dir = client_->create_dir();
  EXPECT_EQ(client_->enter(dir.value(), "", dummy_cap(1)).error(),
            ErrorCode::invalid_argument);
}

TEST_F(DirectorySuite, RemoveAbsentNameFails) {
  const auto dir = client_->create_dir();
  EXPECT_EQ(client_->remove(dir.value(), "ghost").error(),
            ErrorCode::not_found);
}

TEST_F(DirectorySuite, ListReturnsSortedEntries) {
  const auto dir = client_->create_dir();
  ASSERT_TRUE(client_->enter(dir.value(), "bravo", dummy_cap(2)).ok());
  ASSERT_TRUE(client_->enter(dir.value(), "alpha", dummy_cap(1)).ok());
  const auto entries = client_->list(dir.value());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  EXPECT_EQ(entries.value()[0].name, "alpha");
  EXPECT_EQ(entries.value()[0].capability, dummy_cap(1));
  EXPECT_EQ(entries.value()[1].name, "bravo");
}

TEST_F(DirectorySuite, DeleteOnlyWhenEmpty) {
  const auto dir = client_->create_dir();
  ASSERT_TRUE(client_->enter(dir.value(), "x", dummy_cap(1)).ok());
  EXPECT_EQ(client_->delete_dir(dir.value()).error(), ErrorCode::not_empty);
  ASSERT_TRUE(client_->remove(dir.value(), "x").ok());
  EXPECT_TRUE(client_->delete_dir(dir.value()).ok());
  EXPECT_EQ(client_->list(dir.value()).error(), ErrorCode::no_such_object);
}

TEST_F(DirectorySuite, ReadOnlyDirectoryCapability) {
  const auto dir = client_->create_dir();
  const auto read_only =
      restrict_capability(*transport_, dir.value(), core::rights::kRead);
  ASSERT_TRUE(read_only.ok());
  ASSERT_TRUE(client_->enter(dir.value(), "x", dummy_cap(1)).ok());
  EXPECT_TRUE(client_->lookup(read_only.value(), "x").ok());
  EXPECT_TRUE(client_->list(read_only.value()).ok());
  EXPECT_EQ(client_->enter(read_only.value(), "y", dummy_cap(2)).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(client_->remove(read_only.value(), "x").error(),
            ErrorCode::permission_denied);
}

TEST_F(DirectorySuite, NestedDirectoriesSameServer) {
  const auto root = client_->create_dir();
  const auto sub = client_->create_dir();
  ASSERT_TRUE(client_->enter(root.value(), "sub", sub.value()).ok());
  ASSERT_TRUE(client_->enter(sub.value(), "leaf", dummy_cap(3)).ok());
  const auto resolved = resolve_path(*transport_, root.value(), "sub/leaf");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), dummy_cap(3));
}

TEST_F(DirectorySuite, ResolveEdgeCases) {
  const auto root = client_->create_dir();
  // Empty path resolves to the root itself.
  EXPECT_EQ(resolve_path(*transport_, root.value(), "").value(), root.value());
  // Empty components are malformed.
  EXPECT_EQ(resolve_path(*transport_, root.value(), "a//b").error(),
            ErrorCode::invalid_argument);
  // Missing component.
  EXPECT_EQ(resolve_path(*transport_, root.value(), "missing").error(),
            ErrorCode::not_found);
}

TEST(CrossServerTraversal, PathWalkHopsBetweenDirectoryServers) {
  // "If the capability returned happens to be for a directory managed by a
  // different directory server, then the ensuing request to look up 'b'
  // just goes to the new server. ... The distribution is completely
  // transparent."
  net::Network net;
  net::Machine& m1 = net.add_machine("dirserver1");
  net::Machine& m2 = net.add_machine("dirserver2");
  net::Machine& cm = net.add_machine("client");
  Rng rng(11);
  const auto scheme1 = core::make_scheme(core::SchemeKind::one_way_xor, rng);
  const auto scheme2 = core::make_scheme(core::SchemeKind::commutative, rng);
  DirectoryServer server1(m1, Port(0xD1), scheme1, 1);
  DirectoryServer server2(m2, Port(0xD2), scheme2, 2);
  server1.start();
  server2.start();
  ASSERT_NE(server1.put_port(), server2.put_port());

  rpc::Transport transport(cm, 3);
  DirectoryClient dir1(transport, server1.put_port());
  DirectoryClient dir2(transport, server2.put_port());

  // Root "a" on server 1; "a/b" is a directory on server 2; "a/b/c" is a
  // file capability entered there.
  const auto a = dir1.create_dir().value();
  const auto b = dir2.create_dir().value();
  const core::Capability c{Port(0xF00D), ObjectNumber(9), Rights::all(),
                           CheckField(0x1234)};
  ASSERT_TRUE(dir1.enter(a, "b", b).ok());
  ASSERT_TRUE(dir2.enter(b, "c", c).ok());

  const auto resolved = resolve_path(transport, a, "b/c");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), c);
  // Both servers actually served a lookup.
  EXPECT_GE(server1.requests_served(), 1u);
  EXPECT_GE(server2.requests_served(), 1u);
}

TEST(DirectoryHeterogeneous, DirectoryHoldsFileAndDirectoryCapabilities) {
  // "The capabilities within a directory need not all be file capabilities
  // and certainly need not all be ... managed by the same server."
  net::Network net;
  net::Machine& m = net.add_machine("servers");
  net::Machine& cm = net.add_machine("client");
  Rng rng(13);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);

  BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  BlockServer blocks(m, Port(0xB1), scheme, 1, geometry);
  blocks.start();
  FlatFileServer files(m, Port(0xF1), scheme, 2, blocks.put_port());
  files.start();
  DirectoryServer dirs(m, Port(0xD1), scheme, 3);
  dirs.start();

  rpc::Transport transport(cm, 4);
  DirectoryClient dir_client(transport, dirs.put_port());
  FlatFileClient file_client(transport, files.put_port());

  const auto root = dir_client.create_dir().value();
  const auto file = file_client.create().value();
  ASSERT_TRUE(file_client.write(file, 0, Buffer{'h', 'i'}).ok());
  ASSERT_TRUE(dir_client.enter(root, "notes.txt", file).ok());

  // Another client resolves the name and reads the file through whatever
  // server the capability points at.
  const auto found = resolve_path(transport, root, "notes.txt");
  ASSERT_TRUE(found.ok());
  FlatFileClient reader(transport, found.value().server_port);
  EXPECT_EQ(reader.read(found.value(), 0, 2).value(), (Buffer{'h', 'i'}));
}

TEST(BatchedPathWalk, ResolvePathsSharesFramesAcrossWalks) {
  // Two directory servers; a tree spanning both; many paths resolved at
  // once.  Walks standing at the same server in the same round must share
  // one batch frame, and every outcome must match its one-at-a-time
  // resolve_path counterpart.
  net::Network net;
  net::Machine& m1 = net.add_machine("dirserver1");
  net::Machine& m2 = net.add_machine("dirserver2");
  net::Machine& cm = net.add_machine("client");
  Rng rng(17);
  const auto scheme1 = core::make_scheme(core::SchemeKind::one_way_xor, rng);
  const auto scheme2 = core::make_scheme(core::SchemeKind::commutative, rng);
  DirectoryServer server1(m1, Port(0xDA), scheme1, 1);
  DirectoryServer server2(m2, Port(0xDB), scheme2, 2);
  server1.start();
  server2.start();

  rpc::Transport transport(cm, 3);
  DirectoryClient dir1(transport, server1.put_port());
  DirectoryClient dir2(transport, server2.put_port());

  // root(a, server1) -> {sub1 on server1, sub2 on server2}; leaves on each.
  const auto root = dir1.create_dir().value();
  const auto sub1 = dir1.create_dir().value();
  const auto sub2 = dir2.create_dir().value();
  const core::Capability leaf1{Port(0x111), ObjectNumber(1), Rights::all(),
                               CheckField(0xAAA)};
  const core::Capability leaf2{Port(0x222), ObjectNumber(2), Rights::all(),
                               CheckField(0xBBB)};
  ASSERT_TRUE(dir1.enter(root, "sub1", sub1).ok());
  ASSERT_TRUE(dir1.enter(root, "sub2", sub2).ok());
  ASSERT_TRUE(dir1.enter(sub1, "leaf", leaf1).ok());
  ASSERT_TRUE(dir2.enter(sub2, "leaf", leaf2).ok());

  const std::vector<std::string> paths = {
      "sub1/leaf", "sub2/leaf", "sub1", "missing/x", "sub1//bad", "",
  };
  const auto before_frames = net.stats().batch_frames.load();
  const auto results = resolve_paths(transport, root, paths);
  ASSERT_EQ(results.size(), paths.size());
  EXPECT_EQ(results[0].value(), leaf1);
  EXPECT_EQ(results[1].value(), leaf2);
  EXPECT_EQ(results[2].value(), sub1);
  EXPECT_EQ(results[3].error(), ErrorCode::not_found);
  EXPECT_EQ(results[4].error(), ErrorCode::invalid_argument);
  EXPECT_EQ(results[5].value(), root);  // empty path is the root itself

  // Round 1: all four live walks stand at server1 -> one frame.  Round 2:
  // one walk each at server1 and server2 -> two frames.  Six frames total
  // counting the three batched replies.
  EXPECT_EQ(net.stats().batch_frames.load() - before_frames, 6u);

  // The batched walk agrees with the sequential one on every path.
  for (const auto& path : paths) {
    const auto sequential = resolve_path(transport, root, path);
    const auto batched = resolve_paths(transport, root, {&path, 1});
    ASSERT_EQ(batched.size(), 1u);
    EXPECT_EQ(batched[0].ok(), sequential.ok());
    EXPECT_EQ(batched[0].error(), sequential.error());
    if (sequential.ok()) {
      EXPECT_EQ(batched[0].value(), sequential.value());
    }
  }
}

TEST(BatchedPathWalk, FileInTheMiddleOfAPathIsInvalidArgument) {
  // A sub-request LOOKUP answered with no_such_operation (a file server's
  // opcode space) must map to invalid_argument exactly like resolve_path.
  net::Network net;
  net::Machine& m = net.add_machine("servers");
  net::Machine& cm = net.add_machine("client");
  Rng rng(19);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);
  BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  BlockServer blocks(m, Port(0xB2), scheme, 1, geometry);
  blocks.start();
  FlatFileServer files(m, Port(0xF2), scheme, 2, blocks.put_port());
  files.start();
  DirectoryServer dirs(m, Port(0xD3), scheme, 3);
  dirs.start();

  rpc::Transport transport(cm, 4);
  DirectoryClient dir_client(transport, dirs.put_port());
  FlatFileClient file_client(transport, files.put_port());
  const auto root = dir_client.create_dir().value();
  const auto file = file_client.create().value();
  ASSERT_TRUE(dir_client.enter(root, "notes", file).ok());

  const std::vector<std::string> paths = {"notes/deeper", "notes"};
  const auto results = resolve_paths(transport, root, paths);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].error(), ErrorCode::invalid_argument);  // ENOTDIR
  EXPECT_EQ(results[1].value(), file);
}

}  // namespace
}  // namespace amoeba::servers
