// Tests for the bank server (§3.6): accounts, transfers, currencies,
// conversion, minting, and the rights discipline around money movement.
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::servers {
namespace {

class BankSuite : public ::testing::Test {
 protected:
  BankSuite()
      : machine_(net_.add_machine("bank")),
        client_machine_(net_.add_machine("client")),
        rng_(31) {
    server_ = std::make_unique<BankServer>(
        machine_, Port(0xBA7C),
        core::make_scheme(core::SchemeKind::commutative, rng_), 1);
    server_->set_conversion_rate(currency::kDollar, currency::kYen, 150, 1);
    server_->set_conversion_rate(currency::kYen, currency::kDollar, 1, 150);
    server_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 2);
    client_ = std::make_unique<BankClient>(*transport_, server_->put_port());
    alice_ = client_->create_account().value();
    bob_ = client_->create_account().value();
    // Seed alice with 1000 dollars.
    EXPECT_TRUE(client_
                    ->mint(server_->master_capability(), alice_,
                           currency::kDollar, 1000)
                    .ok());
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<BankServer> server_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
};

TEST_F(BankSuite, BalancesStartAtZero) {
  EXPECT_EQ(client_->balance(bob_, currency::kDollar).value(), 0);
  EXPECT_EQ(client_->balance(alice_, currency::kYen).value(), 0);
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 1000);
}

TEST_F(BankSuite, TransferMovesMoney) {
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 300).ok());
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 700);
  EXPECT_EQ(client_->balance(bob_, currency::kDollar).value(), 300);
}

TEST_F(BankSuite, InsufficientFundsRejected) {
  EXPECT_EQ(client_->transfer(alice_, bob_, currency::kDollar, 1001).error(),
            ErrorCode::insufficient_funds);
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 1000);
}

TEST_F(BankSuite, CurrenciesAreSeparate) {
  // Dollars cannot be spent as yen.
  EXPECT_EQ(client_->transfer(alice_, bob_, currency::kYen, 1).error(),
            ErrorCode::insufficient_funds);
}

TEST_F(BankSuite, NonPositiveAmountsRejected) {
  EXPECT_EQ(client_->transfer(alice_, bob_, currency::kDollar, 0).error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(client_->transfer(alice_, bob_, currency::kDollar, -5).error(),
            ErrorCode::invalid_argument);
}

TEST_F(BankSuite, SelfTransferIsNoOp) {
  ASSERT_TRUE(client_->transfer(alice_, alice_, currency::kDollar, 100).ok());
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 1000);
}

TEST_F(BankSuite, ConversionAtConfiguredRate) {
  const auto yen = client_->convert(alice_, currency::kDollar,
                                    currency::kYen, 10);
  ASSERT_TRUE(yen.ok());
  EXPECT_EQ(yen.value(), 1500);
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 990);
  EXPECT_EQ(client_->balance(alice_, currency::kYen).value(), 1500);
}

TEST_F(BankSuite, InconvertibleCurrencyRejected) {
  // No rate configured for dollar -> franc: "possibly inconvertible".
  EXPECT_EQ(client_->convert(alice_, currency::kDollar, currency::kFranc, 1)
                .error(),
            ErrorCode::bad_currency);
}

TEST_F(BankSuite, WithdrawRightRequiredToSpend) {
  // A deposit-only capability can receive but not spend.
  const Rights deposit_only =
      core::rights::kRead.with(bank_rights::kDepositBit);
  const auto deposit_cap =
      restrict_capability(*transport_, alice_, deposit_only);
  ASSERT_TRUE(deposit_cap.ok());
  EXPECT_EQ(client_->transfer(deposit_cap.value(), bob_, currency::kDollar, 1)
                .error(),
            ErrorCode::permission_denied);
  // But it can be paid into.
  ASSERT_TRUE(client_->mint(server_->master_capability(),
                            deposit_cap.value(), currency::kDollar, 5)
                  .ok());
}

TEST_F(BankSuite, DepositRightRequiredToReceive) {
  const auto inspect_only =
      restrict_capability(*transport_, bob_, core::rights::kRead);
  ASSERT_TRUE(inspect_only.ok());
  EXPECT_EQ(client_->transfer(alice_, inspect_only.value(),
                              currency::kDollar, 1)
                .error(),
            ErrorCode::permission_denied);
}

TEST_F(BankSuite, OrdinaryAccountCannotMint) {
  // Even a full-rights ordinary account is not the bank.
  EXPECT_EQ(client_->mint(alice_, bob_, currency::kDollar, 100).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(client_->balance(bob_, currency::kDollar).value(), 0);
}

TEST_F(BankSuite, ForgedCapabilityCannotTouchMoney) {
  core::Capability forged = alice_;
  forged.check = CheckField(forged.check.value() ^ 1);
  EXPECT_EQ(client_->balance(forged, currency::kDollar).error(),
            ErrorCode::bad_capability);
  EXPECT_EQ(client_->transfer(forged, bob_, currency::kDollar, 1).error(),
            ErrorCode::bad_capability);
}

TEST_F(BankSuite, MalformedTransferPayloadRejected) {
  // Transfer with garbage instead of a capability in the data field.
  net::Message req;
  req.header.dest = server_->put_port();
  req.header.opcode = bank_ops::kTransfer.opcode;
  set_header_capability(req, alice_);
  req.header.params[0] = currency::kDollar;
  req.header.params[1] = 1;
  req.data = {1, 2, 3};  // not 16 bytes
  const auto reply = transport_->trans(req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.status, ErrorCode::invalid_argument);
}

TEST_F(BankSuite, PrePaymentPattern) {
  // "The client can pre-pay for a substantial amount of work, in order to
  // eliminate the overhead of going back to the bank on each request."
  const auto server_account = client_->create_account().value();
  ASSERT_TRUE(
      client_->transfer(alice_, server_account, currency::kDollar, 500).ok());
  EXPECT_EQ(client_->balance(server_account, currency::kDollar).value(), 500);
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 500);
}

TEST_F(BankSuite, TransferManyBatchesIndependentOutcomes) {
  // Payroll shape: several independent transfers in ONE batched round
  // trip, each entry atomic on its own, failures isolated per entry.
  const auto carol = client_->create_account().value();
  const std::vector<BankClient::Transfer> payroll = {
      {alice_, bob_, currency::kDollar, 300},
      {alice_, carol, currency::kDollar, 200},
      {bob_, carol, currency::kYen, 50},        // bob has no yen
      {alice_, bob_, currency::kDollar, -5},    // rejected amount
      {alice_, carol, currency::kDollar, 100},
  };
  const auto before = net_.stats().unicasts.load();
  const auto outcomes = client_->transfer_many(payroll);
  // One request frame, one reply frame, for all five transfers.
  EXPECT_EQ(net_.stats().unicasts.load() - before, 2u);
  EXPECT_EQ(net_.stats().batch_frames.load(), 2u);
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_EQ(outcomes[2].error(), ErrorCode::insufficient_funds);
  EXPECT_EQ(outcomes[3].error(), ErrorCode::invalid_argument);
  EXPECT_TRUE(outcomes[4].ok());
  EXPECT_EQ(client_->balance(alice_, currency::kDollar).value(), 400);
  EXPECT_EQ(client_->balance(bob_, currency::kDollar).value(), 300);
  EXPECT_EQ(client_->balance(carol, currency::kDollar).value(), 300);
}

TEST_F(BankSuite, TransferManyRightsDisciplineHoldsPerEntry) {
  // A read-only capability inside a batch must fail exactly like it does
  // in a lone transfer -- batching must not widen any right.
  const auto read_only =
      restrict_capability(*transport_, alice_, core::rights::kRead).value();
  const std::vector<BankClient::Transfer> mixed = {
      {read_only, bob_, currency::kDollar, 10},
      {alice_, bob_, currency::kDollar, 10},
  };
  const auto outcomes = client_->transfer_many(mixed);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].error(), ErrorCode::permission_denied);
  EXPECT_TRUE(outcomes[1].ok());
  EXPECT_EQ(client_->balance(bob_, currency::kDollar).value(), 10);
}

}  // namespace
}  // namespace amoeba::servers
