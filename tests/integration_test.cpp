// System-level integration tests: the Fig. 1 intruder scenarios executed
// end-to-end against real services, the full Amoeba stack (block + file +
// directory + bank + memory servers across machines), and failure
// injection through the whole RPC path.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/kernel/memory_server.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/softprot/filter.hpp"
#include "amoeba/softprot/handshake.hpp"

namespace amoeba {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------- Fig. 1: intruders

class IntruderSuite : public ::testing::Test {
 protected:
  IntruderSuite()
      : server_machine_(net_.add_machine("server")),
        client_machine_(net_.add_machine("client")),
        intruder_machine_(net_.add_machine("intruder")),
        rng_(1) {
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 8;
    geometry.block_size = 64;
    service_ = std::make_unique<servers::BlockServer>(
        server_machine_, kServiceGetPort,
        core::make_scheme(core::SchemeKind::one_way_xor, rng_), 1, geometry);
    service_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 2);
  }

  static constexpr Port kServiceGetPort{0x6E7};

  net::Network net_;
  net::Machine& server_machine_;
  net::Machine& client_machine_;
  net::Machine& intruder_machine_;
  Rng rng_;
  std::unique_ptr<servers::BlockServer> service_;
  std::unique_ptr<rpc::Transport> transport_;
};

TEST_F(IntruderSuite, LegitimatePathWorks) {
  servers::BlockClient client(*transport_, service_->put_port());
  const auto cap = client.allocate();
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(client.write(cap.value(), Buffer{'o', 'k'}).ok());
}

TEST_F(IntruderSuite, ImpersonationByGetOnPutPortFails) {
  // The intruder knows the public put-port P and tries GET(P) to steal
  // requests.  His F-box registers F(P): clients sending to P are never
  // delivered to him.
  net::Receiver fake_service = intruder_machine_.listen(service_->put_port());
  EXPECT_NE(fake_service.put_port(), service_->put_port());

  servers::BlockClient client(*transport_, service_->put_port());
  EXPECT_TRUE(client.allocate().ok());  // real server answered
  EXPECT_FALSE(fake_service.receive({}, 50ms).has_value());
}

TEST_F(IntruderSuite, WiretapNeverSeesSecrets) {
  // A passive tap sees every frame.  It must never see the service's
  // get-port nor any client reply get-port in the clear.
  std::vector<Port> observed;
  net::TapHandle tap = net_.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data) {
      observed.push_back(rec.message.header.dest);
      observed.push_back(rec.message.header.reply);
    }
  });
  std::vector<Port> reply_gets;  // ground truth of secrets, via inner knowledge
  // Drive some traffic.
  servers::BlockClient client(*transport_, service_->put_port());
  const auto cap = client.allocate();
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(client.write(cap.value(), Buffer{1}).ok());

  for (const Port p : observed) {
    EXPECT_NE(p, kServiceGetPort) << "service get-port leaked onto the wire";
  }
}

TEST_F(IntruderSuite, StolenReplyPortIsUseless) {
  // The intruder records a client's (transformed) reply put-port P' from
  // the wire and later does GET(P') hoping to catch that client's replies:
  // his F-box listens on F(P'), and moreover the port was one-shot.
  Port stolen;
  net::TapHandle tap = net_.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data &&
        !rec.message.header.reply.is_null()) {
      stolen = rec.message.header.reply;
    }
  });
  servers::BlockClient client(*transport_, service_->put_port());
  ASSERT_TRUE(client.allocate().ok());
  ASSERT_FALSE(stolen.is_null());

  net::Receiver eavesdrop = intruder_machine_.listen(stolen);
  EXPECT_NE(eavesdrop.put_port(), stolen);
  const auto cap = client.allocate();  // more traffic, fresh reply ports
  ASSERT_TRUE(cap.ok());
  EXPECT_FALSE(eavesdrop.receive({}, 50ms).has_value());
}

TEST_F(IntruderSuite, SignatureCannotBeForged) {
  // A client publishes F(S).  The intruder, knowing F(S) from the wire,
  // puts F(S) in his own signature field -- but HIS F-box applies F again,
  // so the receiver sees F(F(S)) != F(S).
  const Port secret_signature(0x5EC2E7);
  transport_->set_signature(secret_signature);
  const Port published =
      client_machine_.fbox().f().apply(secret_signature);

  // Honest signed request.
  Port seen;
  net::TapHandle tap = net_.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data &&
        !rec.message.header.signature.is_null()) {
      seen = rec.message.header.signature;
    }
  });
  servers::BlockClient client(*transport_, service_->put_port());
  ASSERT_TRUE(client.allocate().ok());
  EXPECT_EQ(seen, published);

  // Intruder attempt: use the observed F(S) as his signature.
  rpc::Transport intruder_transport(intruder_machine_, 9);
  intruder_transport.set_signature(seen);
  servers::BlockClient intruder_client(intruder_transport,
                                       service_->put_port());
  Port forged;
  net::TapHandle tap2 = net_.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data && rec.src == intruder_machine_.id() &&
        !rec.message.header.signature.is_null()) {
      forged = rec.message.header.signature;
    }
  });
  ASSERT_TRUE(intruder_client.allocate().ok());
  EXPECT_NE(forged, published) << "intruder reproduced the signature";
}

TEST_F(IntruderSuite, CapabilityGuessingIsHopeless) {
  // Brute-force forgery against a real service over RPC: random check
  // fields for a known object number.
  servers::BlockClient client(*transport_, service_->put_port());
  const auto real = client.allocate();
  ASSERT_TRUE(real.ok());

  rpc::Transport intruder_transport(intruder_machine_, 13);
  servers::BlockClient intruder_client(intruder_transport,
                                       service_->put_port());
  Rng guesses(1234);
  int successes = 0;
  for (int i = 0; i < 500; ++i) {
    core::Capability forged = real.value();
    forged.check = CheckField(guesses.bits(48));
    if (forged.check == real.value().check) continue;
    successes += intruder_client.read(forged).ok();
  }
  EXPECT_EQ(successes, 0);
}

TEST_F(IntruderSuite, AblationWithoutFBoxImpersonationSucceeds) {
  // The Fig. 1 ablation: with the transformation disabled (and no
  // softprot either), GET(P) == listening on P, so the intruder CAN
  // receive traffic meant for the server.  This is the design point the
  // F-box exists for.
  net::Network open_net{net::Network::Config{.fbox_enabled = false}};
  net::Machine& server = open_net.add_machine("server");
  net::Machine& intruder = open_net.add_machine("intruder");
  net::Machine& client = open_net.add_machine("client");

  const Port service_port(0xCAFE);
  net::Receiver real = server.listen(service_port);
  net::Receiver fake = intruder.listen(service_port);
  EXPECT_EQ(fake.put_port(), service_port);  // squatting works now

  net::Message msg;
  msg.header.dest = service_port;
  // The client's kernel locates the port -- and may find the intruder.
  const auto located = client.locate(service_port);
  ASSERT_TRUE(located.has_value());
  const bool intruder_reachable =
      client.transmit(msg, intruder.id());  // delivered to the squatter
  EXPECT_TRUE(intruder_reachable);
  EXPECT_TRUE(fake.receive({}, 500ms).has_value());
}

// ------------------------------------------------- full Amoeba deployment

/// The whole §3 stack on a five-machine network: storage, file server,
/// naming, bank, and a workstation, exercised through one user scenario.
TEST(FullStack, EndToEndUserScenario) {
  net::Network net;
  net::Machine& storage = net.add_machine("storage");
  net::Machine& fileserver = net.add_machine("fileserver");
  net::Machine& naming = net.add_machine("naming");
  net::Machine& bankhost = net.add_machine("bank");
  net::Machine& workstation = net.add_machine("workstation");
  Rng rng(77);
  const auto scheme = core::make_scheme(core::SchemeKind::commutative, rng);

  servers::BlockServer::Geometry geometry;
  geometry.block_count = 128;
  geometry.block_size = 256;
  servers::BlockServer blocks(storage, Port(0xB10C), scheme, 1, geometry);
  blocks.start();
  servers::BankServer bank(bankhost, Port(0xBA7C), scheme, 2);
  bank.start();

  rpc::Transport fs_transport(fileserver, 50);
  servers::BankClient fs_bank(fs_transport, bank.put_port());
  const auto fs_account = fs_bank.create_account().value();

  servers::FlatFileServer files(fileserver, Port(0xF17E), scheme, 3,
                                blocks.put_port());
  servers::FlatFileServer::Pricing pricing;
  pricing.bank_port = bank.put_port();
  pricing.server_account = fs_account;
  pricing.currency = servers::currency::kDollar;
  pricing.price_per_block = 2;
  files.set_pricing(pricing);
  files.start(2);  // two worker processes comprise the file service

  servers::DirectoryServer dirs(naming, Port(0xD1D1), scheme, 4);
  dirs.start();
  kernel::MemoryServer memory(workstation, Port(0x3E3), scheme, 5);
  memory.start();

  // --- user session on the workstation ---
  rpc::Transport me(workstation, 6);
  servers::BankClient my_bank(me, bank.put_port());
  servers::FlatFileClient my_files(me, files.put_port());
  servers::DirectoryClient my_dirs(me, dirs.put_port());
  kernel::MemoryClient my_memory(me, memory.put_port());

  // Funded account.
  const auto wallet = my_bank.create_account().value();
  ASSERT_TRUE(my_bank
                  .mint(bank.master_capability(), wallet,
                        servers::currency::kDollar, 50)
                  .ok());

  // Create and pay for a file; store its capability under a name.
  const auto report = my_files.create(&wallet);
  ASSERT_TRUE(report.ok());
  Buffer content(700, 'r');
  ASSERT_TRUE(my_files.write(report.value(), 0, content).ok());
  const auto home = my_dirs.create_dir().value();
  const auto docs = my_dirs.create_dir().value();
  ASSERT_TRUE(my_dirs.enter(home, "docs", docs).ok());
  ASSERT_TRUE(my_dirs.enter(docs, "report.txt", report.value()).ok());

  // Storage was charged: 700 bytes = 3 blocks at 2 dollars.
  EXPECT_EQ(my_bank.balance(wallet, servers::currency::kDollar).value(),
            50 - 3 * 2);

  // Share read-only through the directory: restrict LOCALLY (commutative
  // scheme: no server round-trip) and publish the weaker capability.
  const auto& commutative =
      static_cast<const core::CommutativeScheme&>(*scheme);
  core::Capability read_only = report.value();
  for (const int bit : {core::rights::kWriteBit, core::rights::kDestroyBit,
                        core::rights::kAdminBit}) {
    read_only = commutative.restrict_local(read_only, bit).value();
  }
  ASSERT_TRUE(my_dirs.enter(docs, "report-public.txt", read_only).ok());

  // --- a colleague elsewhere resolves the path and reads, cannot write ---
  rpc::Transport colleague(net.add_machine("colleague"), 7);
  const auto found =
      servers::resolve_path(colleague, home, "docs/report-public.txt");
  ASSERT_TRUE(found.ok());
  servers::FlatFileClient their_files(colleague, found.value().server_port);
  EXPECT_EQ(their_files.read(found.value(), 0, 3).value(), Buffer(3, 'r'));
  EXPECT_EQ(their_files.write(found.value(), 0, Buffer{'x'}).error(),
            ErrorCode::permission_denied);

  // --- load the report into a memory segment and make a process of it ---
  const auto segment = my_memory.create_segment(1024);
  ASSERT_TRUE(segment.ok());
  const auto bytes = my_files.read(report.value(), 0, 700);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(my_memory.write(segment.value(), 0, bytes.value()).ok());
  const std::array<core::Capability, 1> segs = {segment.value()};
  const auto process = my_memory.make_process(segs);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(my_memory.start(process.value()).ok());

  // --- revoke the file: every copy dies, including the directory's ---
  const auto fresh = my_files.revoke(report.value());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(their_files.read(found.value(), 0, 1).error(),
            ErrorCode::bad_capability);
  const auto stale =
      servers::resolve_path(colleague, home, "docs/report.txt").value();
  EXPECT_EQ(their_files.read(stale, 0, 1).error(), ErrorCode::bad_capability);
  EXPECT_TRUE(my_files.read(fresh.value(), 0, 1).ok());

  // --- destroy the file; the refund comes back to the wallet ---
  ASSERT_TRUE(my_files.destroy(fresh.value()).ok());
  EXPECT_EQ(my_bank.balance(wallet, servers::currency::kDollar).value(), 50);
}

TEST(FullStack, SurvivesLossyNetwork) {
  // 20% frame loss: transactions may time out, but retried operations
  // eventually succeed and nothing corrupts.
  net::Network net(net::Network::Config{.seed = 5, .drop_probability = 0.2});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Rng rng(3);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 32;
  geometry.block_size = 64;
  servers::BlockServer blocks(sm, Port(0xB1),
                              core::make_scheme(core::SchemeKind::simple, rng),
                              1, geometry);
  blocks.start();
  rpc::Transport transport(cm, 2);
  transport.set_default_timeout(100ms);
  servers::BlockClient client(transport, blocks.put_port());

  auto retry = [&](auto op) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto result = op();
      if (result.ok()) {
        return result;
      }
    }
    return op();
  };

  const auto cap = retry([&] { return client.allocate(); });
  ASSERT_TRUE(cap.ok());
  for (int round = 0; round < 10; ++round) {
    const Buffer payload{static_cast<std::uint8_t>('a' + round)};
    ASSERT_TRUE(retry([&] { return client.write(cap.value(), payload); }).ok());
    const auto read = retry([&] { return client.read(cap.value()); });
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value()[0], payload[0]);
  }
  EXPECT_GT(net.stats().dropped.load(), 0u);
}

TEST(FullStack, SoftProtStackWithoutFBoxes) {
  // The §2.4 deployment: F-boxes off, the whole client/server exchange
  // protected by the key matrix -- bootstrapped by the RSA handshake --
  // while an intruder replays captured frames in vain.
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  net::Machine& im = net.add_machine("intruder");
  Rng rng(9);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);

  auto server_keys = std::make_shared<softprot::KeyStore>();
  auto client_keys = std::make_shared<softprot::KeyStore>();
  softprot::BootService boot(sm, Port(0xB007), server_keys, 11);
  boot.start();

  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer blocks(sm, Port(0xB10C), scheme, 1, geometry);
  blocks.set_filter(std::make_shared<softprot::SealingFilter>(server_keys, 2));
  blocks.start();

  Rng client_rng(21);
  ASSERT_TRUE(softprot::establish_keys(cm, boot.put_port(), boot.public_key(),
                                       *client_keys, client_rng)
                  .ok());
  rpc::Transport transport(cm, 3);
  transport.set_filter(std::make_shared<softprot::SealingFilter>(client_keys, 4));
  servers::BlockClient client(transport, blocks.put_port());

  // Capture the client's sealed write for replay.
  std::optional<net::Message> captured;
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data && rec.src == cm.id() &&
        rec.message.header.opcode == servers::block_ops::kWrite.opcode) {
      captured = rec.message;
    }
  });

  const auto cap = client.allocate();
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(client.write(cap.value(), Buffer{'v', '1'}).ok());
  ASSERT_TRUE(captured.has_value());

  // Intruder replays the captured request from his machine.  The server
  // decrypts the capability with M[intruder][server] -- which does not
  // exist (no handshake) or yields garbage; either way the write fails.
  net::Message replay = *captured;
  replay.data = {'h', 'a', 'x'};
  net::Receiver reply_box = im.listen(Port(0x1111));
  replay.header.reply = Port(0x1111);
  ASSERT_TRUE(im.transmit(replay, sm.id()));
  const auto reply = reply_box.receive({}, 1000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->message.header.status, ErrorCode::ok);
  // The file content is unchanged.
  EXPECT_EQ(client.read(cap.value()).value()[0], 'v');
}

}  // namespace
}  // namespace amoeba
