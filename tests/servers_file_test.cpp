// Tests for the flat file server (§3.3): byte-range IO across block
// boundaries, the block-server client relationship, delegation via
// restriction, revocation, and quota-by-pricing through the bank (§3.6).
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/flat_file_server.hpp"

namespace amoeba::servers {
namespace {

/// Two machines, a block server feeding a flat file server, one client.
class FlatFileSuite : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kBlockSize = 64;

  FlatFileSuite()
      : storage_machine_(net_.add_machine("storage")),
        fs_machine_(net_.add_machine("fileserver")),
        client_machine_(net_.add_machine("client")),
        rng_(99) {
    BlockServer::Geometry geometry;
    geometry.block_count = 256;
    geometry.block_size = kBlockSize;
    const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng_);
    blocks_ = std::make_unique<BlockServer>(storage_machine_, Port(0xB10C),
                                            scheme, 1, geometry);
    blocks_->start();
    files_ = std::make_unique<FlatFileServer>(fs_machine_, Port(0xF17E),
                                              scheme, 2, blocks_->put_port());
    files_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 3);
    client_ = std::make_unique<FlatFileClient>(*transport_,
                                               files_->put_port());
  }

  net::Network net_;
  net::Machine& storage_machine_;
  net::Machine& fs_machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<BlockServer> blocks_;
  std::unique_ptr<FlatFileServer> files_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<FlatFileClient> client_;
};

TEST_F(FlatFileSuite, CreateWriteReadRoundTrip) {
  const auto file = client_->create();
  ASSERT_TRUE(file.ok());
  const Buffer data = {'h', 'e', 'l', 'l', 'o'};
  ASSERT_TRUE(client_->write(file.value(), 0, data).ok());
  EXPECT_EQ(client_->size(file.value()).value(), 5u);
  const auto read = client_->read(file.value(), 0, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data);
}

TEST_F(FlatFileSuite, WritesSpanBlockBoundaries) {
  const auto file = client_->create();
  ASSERT_TRUE(file.ok());
  // 300 bytes crosses five 64-byte blocks.
  Buffer big(300);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i & 0xFF);
  }
  ASSERT_TRUE(client_->write(file.value(), 0, big).ok());
  const auto read = client_->read(file.value(), 0, 300);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), big);
  // An unaligned mid-file overwrite must leave the rest intact.
  const Buffer patch = {0xAA, 0xBB, 0xCC};
  ASSERT_TRUE(client_->write(file.value(), 100, patch).ok());
  const auto reread = client_->read(file.value(), 98, 8);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value(),
            (Buffer{98, 99, 0xAA, 0xBB, 0xCC, 103, 104, 105}));
}

TEST_F(FlatFileSuite, UnalignedPositionsAndEof) {
  const auto file = client_->create();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client_->write(file.value(), 70, Buffer{1, 2, 3}).ok());
  EXPECT_EQ(client_->size(file.value()).value(), 73u);
  // Bytes before the write position read as zero (allocated hole).
  const auto hole = client_->read(file.value(), 0, 70);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(hole.value(), Buffer(70, 0));
  // Reads beyond EOF truncate; reads after EOF are empty.
  EXPECT_EQ(client_->read(file.value(), 71, 100).value(), (Buffer{2, 3}));
  EXPECT_TRUE(client_->read(file.value(), 200, 10).value().empty());
}

TEST_F(FlatFileSuite, OverflowingWritePositionRejected) {
  // A write position near 2^64 must not wrap the end-of-write arithmetic
  // into the existing allocation (out-of-bounds block indexing).
  const auto file = client_->create();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client_->write(file.value(), 0, Buffer(64, 1)).ok());
  EXPECT_EQ(client_->write(file.value(), ~std::uint64_t{0} - 4,
                           Buffer{1, 2, 3, 4, 5, 6, 7, 8})
                .error(),
            ErrorCode::invalid_argument);
  // Server intact: the file still reads back.
  EXPECT_EQ(client_->read(file.value(), 0, 64).value(), Buffer(64, 1));
}

TEST_F(FlatFileSuite, FileServerConsumesBlockServerBlocks) {
  const auto before = client_->create();
  ASSERT_TRUE(before.ok());
  const auto stats_before = blocks_->disk_stats();
  Buffer data(kBlockSize * 3);
  ASSERT_TRUE(client_->write(before.value(), 0, data).ok());
  const auto stats_after = blocks_->disk_stats();
  EXPECT_EQ(stats_after.allocations - stats_before.allocations, 3u);
}

TEST_F(FlatFileSuite, DestroyReleasesBlocks) {
  const auto file = client_->create();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client_->write(file.value(), 0, Buffer(kBlockSize * 2)).ok());
  const auto frees_before = blocks_->disk_stats().frees;
  ASSERT_TRUE(client_->destroy(file.value()).ok());
  EXPECT_EQ(blocks_->disk_stats().frees - frees_before, 2u);
  EXPECT_EQ(client_->size(file.value()).error(), ErrorCode::no_such_object);
}

TEST_F(FlatFileSuite, ReadOnlyDelegationEndToEnd) {
  // The paper's motivating example: create a file, write it, give another
  // client read-only access.
  const auto owner_cap = client_->create();
  ASSERT_TRUE(owner_cap.ok());
  ASSERT_TRUE(client_->write(owner_cap.value(), 0, Buffer{'s'}).ok());
  const auto reader_cap =
      client_->restrict(owner_cap.value(), core::rights::kRead);
  ASSERT_TRUE(reader_cap.ok());

  // "Another client" on its own machine, holding only the bit pattern.
  rpc::Transport other_transport(net_.add_machine("friend"), 9);
  FlatFileClient other(other_transport, files_->put_port());
  EXPECT_EQ(other.read(reader_cap.value(), 0, 1).value(), (Buffer{'s'}));
  EXPECT_EQ(other.write(reader_cap.value(), 0, Buffer{'x'}).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(other.destroy(reader_cap.value()).error(),
            ErrorCode::permission_denied);
}

TEST_F(FlatFileSuite, RevocationInvalidatesDelegatedCopies) {
  const auto owner_cap = client_->create();
  ASSERT_TRUE(owner_cap.ok());
  const auto reader_cap =
      client_->restrict(owner_cap.value(), core::rights::kRead);
  ASSERT_TRUE(reader_cap.ok());
  const auto fresh = client_->revoke(owner_cap.value());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(client_->read(reader_cap.value(), 0, 1).error(),
            ErrorCode::bad_capability);
  EXPECT_TRUE(client_->size(fresh.value()).ok());
}

// ------------------------------------------------------- pricing (§3.6)

class PricedFileSuite : public ::testing::Test {
 protected:
  static constexpr std::int64_t kPricePerBlock = 5;

  PricedFileSuite()
      : machine_(net_.add_machine("servers")),
        client_machine_(net_.add_machine("client")),
        rng_(7) {
    const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng_);
    BlockServer::Geometry geometry;
    geometry.block_count = 64;
    geometry.block_size = 64;
    blocks_ = std::make_unique<BlockServer>(machine_, Port(0xB10C), scheme, 1,
                                            geometry);
    blocks_->start();
    bank_ = std::make_unique<BankServer>(machine_, Port(0xBA7C), scheme, 2);
    bank_->start();

    // The file server owns a bank account and charges dollars per block.
    server_transport_ = std::make_unique<rpc::Transport>(machine_, 5);
    BankClient bank_client(*server_transport_, bank_->put_port());
    fs_account_ = bank_client.create_account().value();

    files_ = std::make_unique<FlatFileServer>(machine_, Port(0xF17E), scheme,
                                              3, blocks_->put_port());
    FlatFileServer::Pricing pricing;
    pricing.bank_port = bank_->put_port();
    pricing.server_account = fs_account_;
    pricing.currency = currency::kDollar;
    pricing.price_per_block = kPricePerBlock;
    files_->set_pricing(pricing);
    files_->start();

    transport_ = std::make_unique<rpc::Transport>(client_machine_, 4);
    client_ = std::make_unique<FlatFileClient>(*transport_,
                                               files_->put_port());
    bank_client_ = std::make_unique<BankClient>(*transport_,
                                                bank_->put_port());
    // Fund the client with 100 dollars from the mint.
    my_account_ = bank_client_->create_account().value();
    EXPECT_TRUE(bank_client_
                    ->mint(bank_->master_capability(), my_account_,
                           currency::kDollar, 100)
                    .ok());
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<BlockServer> blocks_;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<rpc::Transport> server_transport_;
  std::unique_ptr<FlatFileServer> files_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<FlatFileClient> client_;
  std::unique_ptr<BankClient> bank_client_;
  core::Capability fs_account_;
  core::Capability my_account_;
};

TEST_F(PricedFileSuite, StorageGrowthIsCharged) {
  const auto file = client_->create(&my_account_);
  ASSERT_TRUE(file.ok());
  // Three blocks at 5 dollars each.
  ASSERT_TRUE(client_->write(file.value(), 0, Buffer(64 * 3)).ok());
  EXPECT_EQ(bank_client_->balance(my_account_, currency::kDollar).value(),
            100 - 3 * kPricePerBlock);
  EXPECT_EQ(bank_client_->balance(fs_account_, currency::kDollar).value(),
            3 * kPricePerBlock);
}

TEST_F(PricedFileSuite, CreateWithoutPaymentRejected) {
  EXPECT_EQ(client_->create().error(), ErrorCode::invalid_argument);
}

TEST_F(PricedFileSuite, QuotaEnforcedByEmptyAccount) {
  // "Quotas can be implemented by limiting how many dollars each client
  // has": 100 dollars buys exactly 20 blocks.
  const auto file = client_->create(&my_account_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client_->write(file.value(), 0, Buffer(64 * 20)).ok());
  EXPECT_EQ(bank_client_->balance(my_account_, currency::kDollar).value(), 0);
  const auto over = client_->write(file.value(), 64 * 20, Buffer(64));
  EXPECT_EQ(over.error(), ErrorCode::insufficient_funds);
}

TEST_F(PricedFileSuite, DestroyRefundsBlocks) {
  const auto file = client_->create(&my_account_);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(client_->write(file.value(), 0, Buffer(64 * 4)).ok());
  ASSERT_TRUE(client_->destroy(file.value()).ok());
  // "Returning the resource might result in the client getting his money
  // back" -- the full 4-block charge comes back.
  EXPECT_EQ(bank_client_->balance(my_account_, currency::kDollar).value(),
            100);
}

TEST_F(PricedFileSuite, PaymentCapabilityNeedsWithdrawRight) {
  const auto weak_account =
      restrict_capability(*transport_, my_account_, core::rights::kRead);
  ASSERT_TRUE(weak_account.ok());
  const auto file = client_->create(&weak_account.value());
  ASSERT_TRUE(file.ok());  // creation is free; growth is charged
  EXPECT_EQ(client_->write(file.value(), 0, Buffer(64)).error(),
            ErrorCode::permission_denied);
}

}  // namespace
}  // namespace amoeba::servers
