// Primary/backup replication (docs/PROTOCOL.md §9): the cycle-frame
// codec, the replica applier's LSN-floor idempotence, the post-flush
// shipping hook's ordering contract, and the full primary -> backup
// pipeline over the in-process network -- including PR-4 link faults on
// the replication link (drop/duplicate/reorder must never tear a group
// or double-apply an LSN) and the deposed-primary fence.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/replication.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/replication/replica.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"
#include "amoeba/storage/replication/wire.hpp"
#include "test_seed.hpp"

namespace amoeba::storage {
namespace {

using namespace std::chrono_literals;

[[nodiscard]] Buffer bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

[[nodiscard]] Buffer sample_frame(std::uint64_t lsn) {
  const Buffer floor_image = bytes_of("floors");
  const std::vector<MetaImage> metas = {{"reply-floors", floor_image}};
  const std::vector<ShardAppend> appends = {{0, bytes_of("rec-a")},
                                            {3, bytes_of("rec-b")}};
  return encode_cycle_frame(lsn, metas, appends);
}

TEST(ReplicationWireTest, CycleFrameRoundTrips) {
  const Buffer frame = sample_frame(7);
  CycleFrame decoded;
  ASSERT_TRUE(decode_cycle_frame(frame, decoded));
  EXPECT_EQ(decoded.rep_lsn, 7u);
  ASSERT_EQ(decoded.metas.size(), 1u);
  EXPECT_EQ(decoded.metas[0].first, "reply-floors");
  EXPECT_EQ(decoded.metas[0].second, bytes_of("floors"));
  ASSERT_EQ(decoded.appends.size(), 2u);
  EXPECT_EQ(decoded.appends[0].shard, 0u);
  EXPECT_EQ(decoded.appends[0].bytes, bytes_of("rec-a"));
  EXPECT_EQ(decoded.appends[1].shard, 3u);
  EXPECT_EQ(decoded.appends[1].bytes, bytes_of("rec-b"));
}

TEST(ReplicationWireTest, RejectsTornAndCorruptFrames) {
  const Buffer frame = sample_frame(1);
  CycleFrame decoded;
  // Truncation at every prefix length: a torn shipment never half-applies.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(decode_cycle_frame(
        std::span(frame.data(), len), decoded))
        << "prefix " << len;
  }
  // Trailing garbage is not "one whole frame" either.
  Buffer padded = frame;
  padded.push_back(0x5A);
  EXPECT_FALSE(decode_cycle_frame(padded, decoded));
  // Any single corrupted body byte trips the whole-frame checksum.
  for (std::size_t i = 8; i < frame.size(); ++i) {
    Buffer bent = frame;
    bent[i] ^= 0x01;
    EXPECT_FALSE(decode_cycle_frame(bent, decoded)) << "byte " << i;
  }
}

TEST(ReplicaApplierTest, FloorGatesDuplicatesAndGaps) {
  auto backend = std::make_shared<MemoryBackend>(4);
  ReplicaApplier applier(backend);
  EXPECT_EQ(applier.applied(), 0u);

  const auto first = applier.apply_cycle(sample_frame(1));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  const Buffer once = backend->read_journal(0);

  // Duplicate (a lossy link's retransmission): acked, not re-applied.
  const auto dup = applier.apply_cycle(sample_frame(1));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value(), 1u);
  EXPECT_EQ(backend->read_journal(0), once) << "duplicate re-applied";

  // Gap: rejected with conflict (the primary answers with a resync).
  const auto gap = applier.apply_cycle(sample_frame(3));
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.error(), ErrorCode::conflict);
  EXPECT_EQ(applier.applied(), 1u);

  // The successor applies.
  const auto next = applier.apply_cycle(sample_frame(2));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 2u);

  // Garbage is invalid_argument, not a crash and not an apply.
  const auto bad = applier.apply_cycle(bytes_of("not a frame"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), ErrorCode::invalid_argument);
}

TEST(ReplicaApplierTest, FloorSurvivesRestart) {
  auto backend = std::make_shared<MemoryBackend>(4);
  {
    ReplicaApplier applier(backend);
    ASSERT_TRUE(applier.apply_cycle(sample_frame(1)).ok());
    ASSERT_TRUE(applier.apply_cycle(sample_frame(2)).ok());
  }
  // A restarted backup resumes at its persisted floor: the primary's
  // retransmissions of already-applied shipments stay duplicates.
  ReplicaApplier restarted(backend);
  EXPECT_EQ(restarted.applied(), 2u);
  const Buffer before = backend->read_journal(0);
  const auto dup = restarted.apply_cycle(sample_frame(2));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(backend->read_journal(0), before);
}

TEST(ReplicaApplierTest, SnapshotAdoptsItsLsnAsFloor) {
  auto backend = std::make_shared<MemoryBackend>(4);
  ReplicaApplier applier(backend);
  // A resync snapshot lands on any floor -- no gap check.
  const Buffer image = bytes_of("snapshot-image");
  const auto adopted = applier.install_snapshot(10, 2, image);
  ASSERT_TRUE(adopted.ok());
  EXPECT_EQ(adopted.value(), 10u);
  EXPECT_EQ(backend->read_snapshot(2), image);
  // The stream continues right behind it...
  EXPECT_TRUE(applier.apply_cycle(sample_frame(11)).ok());
  // ...and everything at or below the adopted floor is a duplicate.
  const auto stale = applier.install_snapshot(5, 1, image);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value(), 11u);
  EXPECT_TRUE(backend->read_snapshot(1).empty());
  // Out-of-range shards are hostile input, not a crash.
  const auto bad = applier.install_snapshot(12, 99, image);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), ErrorCode::invalid_argument);
}

TEST(ReplicaApplierTest, PromoteFencesFurtherShipments) {
  auto backend = std::make_shared<MemoryBackend>(4);
  ReplicaApplier applier(backend);
  ASSERT_TRUE(applier.apply_cycle(sample_frame(1)).ok());
  EXPECT_EQ(applier.promote(), 1u);
  EXPECT_TRUE(applier.promoted());
  const auto refused = applier.apply_cycle(sample_frame(2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), ErrorCode::immutable);
  const auto refused_snap = applier.install_snapshot(9, 0, bytes_of("x"));
  ASSERT_FALSE(refused_snap.ok());
  EXPECT_EQ(refused_snap.error(), ErrorCode::immutable);
}

TEST(GroupCommitHookTest, HookSeesCycleBytesBeforeWaitersRelease) {
  auto backend = std::make_shared<MemoryBackend>(4);
  GroupCommitter committer(backend);
  std::atomic<std::uint64_t> hook_covered{0};
  std::atomic<std::uint64_t> hook_bytes{0};
  committer.set_post_flush_hook([&](const GroupCommitter::FlushCycle& cycle) {
    ASSERT_NE(cycle.metas, nullptr);
    ASSERT_NE(cycle.appends, nullptr);
    std::uint64_t seen = 0;
    for (const ShardAppend& a : *cycle.appends) {
      seen += a.bytes.size();
    }
    EXPECT_EQ(seen, cycle.bytes);
    hook_bytes.fetch_add(seen);
    hook_covered.store(cycle.ticket);
  });
  // One subscriber only.
  EXPECT_THROW(committer.set_post_flush_hook([](const auto&) {}),
               UsageError);

  const Buffer record = bytes_of("framed-record");
  const auto t1 = committer.enqueue(1, record);
  committer.wait_durable(t1);
  // Ordering contract: the hook for the covering cycle ran BEFORE the
  // wait released, and it saw the exact bytes that hit the backend.
  EXPECT_GE(hook_covered.load(), t1);
  const auto t2 = committer.enqueue(2, record);
  committer.wait_durable(t2);
  EXPECT_GE(hook_covered.load(), t2);
  committer.drain();
  EXPECT_EQ(hook_bytes.load(), 2 * record.size());
  EXPECT_EQ(committer.stats().flush_cycle_bytes, 2 * record.size());
}

}  // namespace
}  // namespace amoeba::storage

namespace amoeba::servers {
namespace {

using namespace std::chrono_literals;

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(43);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::commutative, rng));
  }();
  return shared;
}

/// Primary bank + one backup replica machine + a client, the standard
/// replication deployment the tests drive.
class ReplicationSuite : public ::testing::Test {
 protected:
  ReplicationSuite()
      : bank_machine_(net_.add_machine("bank")),
        backup_machine_(net_.add_machine("backup")),
        client_machine_(net_.add_machine("client")),
        local_(std::make_shared<storage::MemoryBackend>(16)),
        backup_backend_(std::make_shared<storage::MemoryBackend>(16)) {
    replica_ = std::make_unique<rpc::ReplicaServer>(
        backup_machine_, Port(0x7B01), scheme(), 11, backup_backend_);
    replica_->start(2);
  }

  ~ReplicationSuite() override {
    shutdown();
    if (replica_ != nullptr) {
      replica_->stop();
    }
  }

  void boot(storage::AckMode mode) {
    replicated_ = rpc::replicate_to(
        local_, mode, bank_machine_, 21,
        {{"backup", replica_->volume_capability()}});
    bank_ = std::make_unique<BankServer>(bank_machine_, Port(0xBA22),
                                         scheme(), 1, replicated_);
    bank_->start(2);
    transport_ = std::make_unique<rpc::Transport>(client_machine_, seed_++);
    client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
  }

  void shutdown() {
    client_.reset();
    transport_.reset();
    if (bank_ != nullptr) {
      bank_->stop();
    }
    bank_.reset();
    replicated_.reset();
  }

  /// Polls until every queued shipment is acked (async-mode catch-up).
  [[nodiscard]] bool wait_synced() {
    for (int i = 0; i < 2000; ++i) {
      replicated_->heartbeat();
      const auto stats = replicated_->stats();
      bool synced = true;
      for (const auto& peer : stats.peers) {
        synced = synced && peer.queued == 0 &&
                 peer.acked_lsn >= stats.shipped_lsn;
      }
      if (synced) {
        return true;
      }
      std::this_thread::sleep_for(2ms);
    }
    return false;
  }

  /// The whole point of journal shipping: the backup volume is
  /// byte-equivalent to the primary's own disk (minus the backup's
  /// private floor key).
  void expect_volumes_equal() {
    for (std::size_t s = 0; s < local_->shard_count(); ++s) {
      EXPECT_EQ(local_->read_journal(s), backup_backend_->read_journal(s))
          << "journal shard " << s;
      EXPECT_EQ(local_->read_snapshot(s), backup_backend_->read_snapshot(s))
          << "snapshot shard " << s;
    }
    for (const std::string& key : local_->meta_keys()) {
      if (key.starts_with(storage::kRepMetaPrefix)) {
        continue;
      }
      EXPECT_EQ(local_->get_meta(key), backup_backend_->get_meta(key))
          << "meta " << key;
    }
  }

  void workload(int transfers) {
    alice_ = client_->create_account().value();
    bob_ = client_->create_account().value();
    ASSERT_TRUE(client_
                    ->mint(bank_->master_capability(), alice_,
                           currency::kDollar, 1'000'000)
                    .ok());
    for (int i = 0; i < transfers; ++i) {
      ASSERT_TRUE(
          client_->transfer(alice_, bob_, currency::kDollar, 7).ok())
          << "transfer " << i;
    }
  }

  // AMOEBA_TEST_SEED reseeds the in-process network's fault dice and the
  // client transports in one go (logged at startup for replay).
  net::Network net_{net::Network::Config{.seed = test::seed_base(43)}};
  net::Machine& bank_machine_;
  net::Machine& backup_machine_;
  net::Machine& client_machine_;
  std::shared_ptr<storage::MemoryBackend> local_;
  std::shared_ptr<storage::MemoryBackend> backup_backend_;
  std::unique_ptr<rpc::ReplicaServer> replica_;
  std::shared_ptr<storage::ReplicatedBackend> replicated_;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
  std::uint64_t seed_ = test::seed_base(43) + 55;
};

TEST_F(ReplicationSuite, AckOneShipsEveryFlushCycleToTheBackup) {
  boot(storage::AckMode::ack_one);
  workload(25);
  // ack_one: every replied mutation's cycle was acknowledged durable on
  // the backup before the client saw the reply -- nothing to wait for
  // beyond stray async snapshot shipments.
  ASSERT_TRUE(wait_synced());
  expect_volumes_equal();
  EXPECT_GT(replica_->applier().applied(), 0u);
}

TEST_F(ReplicationSuite, AsyncModeCatchesUpAndConverges) {
  boot(storage::AckMode::async);
  workload(25);
  ASSERT_TRUE(wait_synced());
  expect_volumes_equal();
}

TEST_F(ReplicationSuite, LinkFaultsNeverTearAGroupOrDoubleApply) {
  boot(storage::AckMode::ack_one);
  // PR-4 faults on the replication link, both directions: shipments and
  // acks drop, duplicate, and reorder.  The at-most-once transaction
  // layer absorbs what it can; the replica's LSN floor suppresses the
  // rest.  Client <-> bank links stay clean (the subject here is the
  // replication link).
  net_.set_link_faults(bank_machine_.id(), backup_machine_.id(),
                       {.drop = 0.15, .duplicate = 0.10, .reorder = 0.15});
  net_.set_link_faults(backup_machine_.id(), bank_machine_.id(),
                       {.drop = 0.15, .duplicate = 0.10, .reorder = 0.15});
  workload(30);
  net_.clear_link_faults();
  ASSERT_TRUE(wait_synced());
  // Byte equality is the strong form of both properties: a torn group or
  // a double-applied LSN would leave the backup's journals differing
  // from the primary's.
  expect_volumes_equal();
}

TEST_F(ReplicationSuite, StdInfoReportsRolesAndLag) {
  boot(storage::AckMode::ack_one);
  workload(5);
  ASSERT_TRUE(wait_synced());
  const auto primary_info =
      rpc::std_info(*transport_, bank_->master_capability(), true);
  ASSERT_TRUE(primary_info.ok());
  EXPECT_NE(primary_info.value().find("role=primary"), std::string::npos)
      << primary_info.value();
  EXPECT_NE(primary_info.value().find("peers=1"), std::string::npos);
  EXPECT_NE(primary_info.value().find("backup.lag=0"), std::string::npos)
      << primary_info.value();

  const auto backup_info =
      rpc::std_info(*transport_, replica_->volume_capability(), true);
  ASSERT_TRUE(backup_info.ok());
  EXPECT_NE(backup_info.value().find("role=backup"), std::string::npos)
      << backup_info.value();
  EXPECT_NE(backup_info.value().find("applied="), std::string::npos);

  // An unreplicated service stays a standalone.
  net::Machine& standalone_machine = net_.add_machine("standalone");
  BankServer standalone(standalone_machine, Port(0xBA33), scheme(), 3);
  standalone.start(1);
  rpc::Transport probe(client_machine_, seed_++);
  const auto info =
      rpc::std_info(probe, standalone.master_capability(), true);
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info.value().find("role=standalone"), std::string::npos)
      << info.value();
  standalone.stop();
}

TEST_F(ReplicationSuite, PromotedBackupFencesTheDeposedPrimary) {
  boot(storage::AckMode::ack_one);
  workload(5);
  ASSERT_TRUE(wait_synced());
  // Promote the backup while the old primary still runs (the split-brain
  // shape).  The backup refuses further shipments...
  const auto floor =
      rpc::rep_promote(*transport_, replica_->volume_capability());
  ASSERT_TRUE(floor.ok());
  EXPECT_TRUE(replica_->applier().promoted());
  const auto backup_info =
      rpc::std_info(*transport_, replica_->volume_capability(), true);
  ASSERT_TRUE(backup_info.ok());
  EXPECT_NE(backup_info.value().find("role=promoted"), std::string::npos);
  // ...and the deposed primary's next ack-one mutation fails loudly
  // instead of reporting durability the cluster no longer honors.
  const auto fenced = client_->transfer(alice_, bob_, currency::kDollar, 7);
  EXPECT_FALSE(fenced.ok());
}

TEST_F(ReplicationSuite, DirectPathShipsMiniCyclesWithoutACommitter) {
  // No committer, no server: drive the decorator's own Backend interface
  // (the synchronous-durability arrangement).
  auto direct = rpc::replicate_to(
      local_, storage::AckMode::ack_one, bank_machine_, 31,
      {{"backup", replica_->volume_capability()}});
  const Buffer record = {0x01, 0x02, 0x03};
  direct->append_journal(2, record);
  const Buffer floor_image = {0x09};
  direct->put_meta("reply-floors", floor_image);
  std::vector<storage::ShardAppend> group;
  group.push_back({0, record});
  group.push_back({1, record});
  direct->append_journal_batch(std::move(group));
  // rep.-prefixed keys are volume-private: never shipped.
  direct->put_meta("rep.private", floor_image);
  // ack_one: every call above waited for the backup's durable apply.
  EXPECT_EQ(backup_backend_->read_journal(2), record);
  EXPECT_EQ(backup_backend_->read_journal(0), record);
  EXPECT_EQ(backup_backend_->read_journal(1), record);
  EXPECT_EQ(backup_backend_->get_meta("reply-floors"), floor_image);
  EXPECT_TRUE(backup_backend_->get_meta("rep.private").empty());
  // Compaction ships too (async): the backup compacts when the primary
  // does.
  const Buffer image = {0x42, 0x42};
  direct->install_snapshot(2, image);
  for (int i = 0; i < 1000 && backup_backend_->read_snapshot(2) != image;
       ++i) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(backup_backend_->read_snapshot(2), image);
  EXPECT_TRUE(backup_backend_->read_journal(2).empty())
      << "snapshot install must truncate the shipped journal too";
}

TEST_F(ReplicationSuite, AttachPeerRacesPromotionUnderFlushStorm) {
  // The failover drill's natural shape, compressed into one process so
  // TSan can watch every interleaving: a committer-driven flush storm on
  // the primary, a backup attaching mid-stream (full resync broadcast),
  // and a concurrent promotion of that same backup.  Each mutation must
  // end in exactly one of two legal states -- durably acked, or refused
  // by the committer's failed latch once the shipper is fenced -- and
  // the storm threads must always terminate (a promoted backup answers
  // `immutable`, which fences the primary and fails every pending and
  // future durability wait instead of retrying forever).
  auto primary = std::make_shared<storage::ReplicatedBackend>(
      local_, storage::AckMode::ack_one);
  storage::GroupCommitter committer(primary);

  std::atomic<int> durable{0};
  std::atomic<int> fenced_waits{0};
  auto storm = [&](std::size_t shard) {
    const Buffer record = {0x11, 0x22, 0x33, 0x44};
    while (true) {
      try {
        committer.wait_durable(committer.enqueue(shard, record));
        durable.fetch_add(1);
      } catch (const std::exception&) {
        fenced_waits.fetch_add(1);
        return;  // fence latched: every later wait throws too
      }
    }
  };
  std::jthread storm_a(storm, 0);
  std::jthread storm_b(storm, 3);

  // Let the storm establish a stream of flush cycles first (with no peer
  // attached, ack_one waits release on local durability alone).
  while (durable.load() < 8) {
    std::this_thread::sleep_for(1ms);
  }

  rpc::Transport promote_transport(client_machine_, seed_++);
  const std::uint64_t link_seed = seed_++;
  {
    std::jthread attacher([&] {
      primary->attach_peer(std::make_shared<rpc::TransportReplicationLink>(
          bank_machine_, link_seed, "backup", replica_->volume_capability()));
    });
    std::jthread promoter([&] {
      const auto floor = rpc::rep_promote(promote_transport,
                                          replica_->volume_capability());
      EXPECT_TRUE(floor.ok());
    });
  }  // both joined

  // Whatever the interleaving, the promoted backup eventually refuses a
  // shipment, the shipper fences, and both storm threads exit loudly.
  storm_a.join();
  storm_b.join();
  EXPECT_TRUE(replica_->applier().promoted());
  EXPECT_EQ(fenced_waits.load(), 2);
  EXPECT_GE(durable.load(), 8);
}

TEST_F(ReplicationSuite, LateAttachResyncsAWholeVolume) {
  // Build primary state BEFORE any peer is attached...
  auto solo = std::make_shared<storage::ReplicatedBackend>(
      local_, storage::AckMode::ack_one);
  bank_ = std::make_unique<BankServer>(bank_machine_, Port(0xBA22),
                                       scheme(), 1, solo);
  bank_->start(2);
  transport_ = std::make_unique<rpc::Transport>(client_machine_, seed_++);
  client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
  replicated_ = solo;
  workload(10);
  // ...then attach: the resync broadcast must rebuild the backup from
  // scratch (snapshots reset, journals + metas follow).
  solo->attach_peer(std::make_shared<rpc::TransportReplicationLink>(
      bank_machine_, 61, "backup", replica_->volume_capability()));
  ASSERT_TRUE(wait_synced());
  expect_volumes_equal();
  // And the stream continues past the resync.
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 7).ok());
  ASSERT_TRUE(wait_synced());
  expect_volumes_equal();
}

}  // namespace
}  // namespace amoeba::servers
