// Crash/restart harness for the durable server stack (docs/PROTOCOL.md
// §8).  The MemoryBackend's append hook injects JOURNAL BARRIERS: at
// chosen barriers mid-workload the volume is capture()d -- byte-for-byte
// the disk image a machine losing power at that instant would leave.
// "Killing" the server is then stopping it and constructing a fresh one
// from a captured image; the tests assert, for EVERY captured barrier:
//
//   * full capability survival -- every capability issued before the
//     barrier still validates against the recovered table,
//   * state invariants -- money is conserved (pair mutations journal
//     atomically, so a transfer can never be torn in half),
//   * at-most-once effects -- replaying the full pre-crash request stream
//     (same client id, same seqs) against the restarted server never
//     re-executes anything the persisted reply-cache floors cover, and a
//     second replay changes nothing at all (exactly-once across the
//     crash).
//
// The per-server restart paths (bank master re-mint, simulated-disk
// rebuild, page-tree rebuild, memory-budget recompute) and a FileBackend
// end-to-end round trip are covered at the bottom.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/kernel/memory_server.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/multiversion_server.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/record.hpp"
#include "amoeba/storage/uring_backend.hpp"

namespace amoeba::servers {
namespace {

using namespace std::chrono_literals;

/// One shared protection scheme: the scheme (its one-way function / keys)
/// is server CONFIGURATION, not run-time state -- a restarted server is
/// booted with the same scheme, and the journaled secrets do the rest.
[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(29);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::commutative, rng));
  }();
  return shared;
}

/// Polls until the service stops executing new requests (the replayed
/// frame stream is fire-and-forget; suppressed duplicates answer nothing).
void quiesce(const rpc::Service& service) {
  std::uint64_t last = service.requests_served();
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(5ms);
    const std::uint64_t now = service.requests_served();
    if (now == last && i > 3) {
      return;
    }
    last = now;
  }
}

class BankCrashSuite : public ::testing::Test {
 protected:
  static constexpr std::int64_t kMint = 1'000'000;
  static constexpr std::int64_t kAmount = 7;
  static constexpr std::uint64_t kClient = 0xC1C1;
  static constexpr int kTransfers = 40;

  BankCrashSuite()
      : bank_machine_(net_.add_machine("bank")),
        client_machine_(net_.add_machine("client")),
        backend_(std::make_shared<storage::MemoryBackend>(16)) {}

  /// Boots a bank on `backend`, runs `setup` against it, and returns the
  /// capabilities minted during setup.
  void boot(std::shared_ptr<storage::Backend> backend) {
    bank_ = std::make_unique<BankServer>(bank_machine_, Port(0xBA22),
                                         scheme(), 1, std::move(backend));
    bank_->start(2);
    transport_ = std::make_unique<rpc::Transport>(client_machine_, seed_++);
    client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
  }

  void shutdown() {
    client_.reset();
    transport_.reset();
    if (bank_ != nullptr) {
      bank_->stop();
    }
    bank_.reset();
  }

  /// Hand-stamped at-most-once transfer frame (client kClient, seq `seq`):
  /// the workload keeps its own identity so the crash tests can REPLAY the
  /// exact pre-crash stream against a restarted server.
  [[nodiscard]] net::Message transfer_frame(std::uint64_t seq,
                                            Port reply_port) const {
    net::Message request = rpc::make_request(
        bank_->put_port(), bank_ops::kTransfer, alice_,
        {currency::kDollar, kAmount, bob_});
    request.header.flags |= net::kFlagAtMostOnce;
    request.header.client = kClient;
    request.header.seq = seq;
    request.header.reply = reply_port;
    return request;
  }

  [[nodiscard]] std::int64_t dollars(const core::Capability& account) {
    return client_->balance(account, currency::kDollar).value();
  }

  /// Sum of every account's dollar balance -- the conservation invariant
  /// (transfers move money; only the journaled mint created any).
  [[nodiscard]] std::int64_t total_money() {
    return dollars(alice_) + dollars(bob_);
  }

  net::Network net_;
  net::Machine& bank_machine_;
  net::Machine& client_machine_;
  std::shared_ptr<storage::MemoryBackend> backend_;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
  std::uint64_t seed_ = 77;
};

TEST_F(BankCrashSuite, KilledAtEveryJournalBarrierRecoversConsistently) {
  boot(backend_);
  alice_ = client_->create_account().value();
  bob_ = client_->create_account().value();
  ASSERT_TRUE(client_
                  ->mint(bank_->master_capability(), alice_,
                         currency::kDollar, kMint)
                  .ok());

  // Arm the journal barriers AFTER setup: every captured image holds the
  // accounts and the mint; the workload's transfers land mid-flight.
  // The hook fires once per backend append -- with group commit that is
  // once per FLUSH GROUP, so every captured image sits exactly on a
  // group boundary (whole groups or nothing; a waiter is never told
  // "durable" for a record these images lack).
  std::mutex images_mutex;
  std::vector<std::shared_ptr<storage::MemoryBackend>> images;
  std::uint64_t groups_seen = 0;  // guarded by images_mutex
  backend_->set_append_hook([&](std::uint64_t) {
    const std::lock_guard lock(images_mutex);
    if (++groups_seen % 7 == 2) {  // barrier every 7 flush groups
      images.push_back(backend_->capture());
    }
  });

  // Workload: the pre-crash request stream, executed while barriers fire.
  const Port reply_get(0x4444);
  net::Receiver replies = client_machine_.listen(reply_get);
  for (int i = 1; i <= kTransfers; ++i) {
    ASSERT_TRUE(client_machine_.transmit(
        transfer_frame(static_cast<std::uint64_t>(i), reply_get),
        bank_machine_.id()));
    ASSERT_TRUE(replies.receive({}, 2'000ms).has_value()) << "transfer " << i;
  }
  backend_->set_append_hook(nullptr);
  shutdown();
  ASSERT_GE(images.size(), 2u) << "workload produced no journal barriers";

  for (std::size_t img = 0; img < images.size(); ++img) {
    SCOPED_TRACE("crash image " + std::to_string(img));
    boot(images[img]);
    // Full capability survival: both accounts validate and answer.
    ASSERT_TRUE(client_->balance(alice_, currency::kDollar).ok());
    ASSERT_TRUE(client_->balance(bob_, currency::kDollar).ok());
    // Conservation: a transfer's debit+credit journal as one atomic
    // group, so no image can hold half of one.
    EXPECT_EQ(total_money(), kMint);
    const std::int64_t recovered_bob = dollars(bob_);
    EXPECT_EQ(recovered_bob % kAmount, 0);

    // Replay the ENTIRE pre-crash stream.  Seqs the crashed server had
    // claimed are covered by the persisted floors and must drop;
    // never-claimed seqs execute for the first time (that is at-most-once,
    // not a violation).
    const Port replay_get(0x4545);
    net::Receiver replay_replies = client_machine_.listen(replay_get);
    for (int i = 1; i <= kTransfers; ++i) {
      ASSERT_TRUE(client_machine_.transmit(
          transfer_frame(static_cast<std::uint64_t>(i), replay_get),
          bank_machine_.id()));
    }
    quiesce(*bank_);
    const std::int64_t after_first_replay = dollars(bob_);
    EXPECT_EQ(total_money(), kMint);
    EXPECT_GE(after_first_replay, recovered_bob);
    EXPECT_LE(after_first_replay, kTransfers * kAmount);

    // Exactly-once across the crash: a SECOND identical replay must be
    // fully suppressed -- if any transfer double-executed, bob's balance
    // would move.
    for (int i = 1; i <= kTransfers; ++i) {
      ASSERT_TRUE(client_machine_.transmit(
          transfer_frame(static_cast<std::uint64_t>(i), replay_get),
          bank_machine_.id()));
    }
    quiesce(*bank_);
    EXPECT_EQ(dollars(bob_), after_first_replay)
        << "a pre-crash transfer re-executed after restart";
    EXPECT_EQ(total_money(), kMint);
    shutdown();
  }
}

TEST_F(BankCrashSuite, StdDestroyNeverReexecutesAcrossRestart) {
  boot(backend_);
  alice_ = client_->create_account().value();
  bob_ = client_->create_account().value();
  const core::Capability doomed = client_->create_account().value();
  ASSERT_TRUE(client_
                  ->mint(bank_->master_capability(), doomed,
                         currency::kDollar, 50)
                  .ok());

  // Destroy with a hand-stamped identity so the duplicate can be replayed
  // post-restart.
  net::Message destroy_frame = rpc::make_request(
      bank_->put_port(), rpc::kStdDestroy, doomed);
  destroy_frame.header.flags |= net::kFlagAtMostOnce;
  destroy_frame.header.client = 0xD00D;
  destroy_frame.header.seq = 1;
  const Port reply_get(0x4646);
  net::Receiver replies = client_machine_.listen(reply_get);
  destroy_frame.header.reply = reply_get;
  ASSERT_TRUE(client_machine_.transmit(destroy_frame, bank_machine_.id()));
  const auto reply = replies.receive({}, 2'000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->message.header.status, ErrorCode::ok);

  // The destroy's reply body is persisted best effort (enqueued, not
  // awaited).  A subsequent at-most-once claim persists ITS floor with a
  // durability wait, and the metadata image is coalesced latest-wins, so
  // after this balance call the body-carrying image is durably on the
  // volume -- the capture below is deterministic.
  ASSERT_TRUE(client_->balance(alice_, currency::kDollar).ok());

  // Crash now; restart from the image.
  const auto image = backend_->capture();
  shutdown();
  boot(image);

  // The object stayed destroyed across the crash...
  EXPECT_FALSE(client_->balance(doomed, currency::kDollar).ok());
  // ...and the replayed duplicate is RE-ANSWERED from the restored reply
  // cache (the completed reply's body rides the persisted metadata image)
  // without re-executing the handler: requests_served must not move.
  const auto served_before = bank_->requests_served();
  ASSERT_TRUE(client_machine_.transmit(destroy_frame, bank_machine_.id()));
  const auto dup_reply = replies.receive({}, 2'000ms);
  ASSERT_TRUE(dup_reply.has_value())
      << "post-restart duplicate of a completed destroy should be "
         "re-answered from the restored cache, not time out";
  EXPECT_EQ(dup_reply->message.header.status, ErrorCode::ok);
  EXPECT_EQ(bank_->requests_served(), served_before);
  // A genuinely fresh destroy is an error, not a second hook run.
  EXPECT_FALSE(rpc::std_destroy(*transport_, doomed).ok());
  shutdown();
}

TEST_F(BankCrashSuite, RevocationHoldsAfterRestart) {
  boot(backend_);
  alice_ = client_->create_account().value();
  const auto replacement = rpc::std_revoke(*transport_, alice_);
  ASSERT_TRUE(replacement.ok());
  const auto image = backend_->capture();
  shutdown();
  boot(image);
  // The revoked capability must not resurrect; the replacement works.
  EXPECT_FALSE(client_->balance(alice_, currency::kDollar).ok());
  EXPECT_TRUE(
      client_->balance(replacement.value(), currency::kDollar).ok());
  shutdown();
}

// ---------------------------------------------------------------------
// Per-server restart paths.

class ServerRestartSuite : public ::testing::Test {
 protected:
  ServerRestartSuite()
      : server_machine_(net_.add_machine("server")),
        client_machine_(net_.add_machine("client")),
        transport_(client_machine_, 5) {}

  net::Network net_;
  net::Machine& server_machine_;
  net::Machine& client_machine_;
  rpc::Transport transport_;
};

TEST_F(ServerRestartSuite, DirectoryRecoversNameSpace) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  core::Capability root;
  core::Capability sub;
  {
    DirectoryServer dir(server_machine_, Port(0xD1E), scheme(), 3, backend);
    dir.start(1);
    DirectoryClient client(transport_, dir.put_port());
    root = client.create_dir().value();
    sub = client.create_dir().value();
    ASSERT_TRUE(client.enter(root, "bin", sub).ok());
    ASSERT_TRUE(client.enter(root, "tmp", sub).ok());
    ASSERT_TRUE(client.enter(sub, "deep", root).ok());
    ASSERT_TRUE(client.remove(root, "tmp").ok());
  }
  const auto image = backend->capture();
  DirectoryServer dir(server_machine_, Port(0xD1E), scheme(), 99, image);
  dir.start(1);
  transport_.flush_cache();
  DirectoryClient client(transport_, dir.put_port());
  // The walk works against recovered state, through pre-crash caps.
  const auto hit = client.lookup(root, "bin");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), sub);
  EXPECT_FALSE(client.lookup(root, "tmp").ok());  // the remove survived
  const auto entries = client.list(sub);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "deep");
  // resolve_path hops still work on the recovered server.
  const auto resolved = resolve_path(transport_, root, "bin/deep");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), root);
}

TEST_F(ServerRestartSuite, BlockAndFlatFileRecoverAcrossServers) {
  auto block_backend = std::make_shared<storage::MemoryBackend>(16);
  auto file_backend = std::make_shared<storage::MemoryBackend>(16);
  core::Capability file_cap;
  Buffer payload(3000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  {
    BlockServer blocks(server_machine_, Port(0xB10C), scheme(), 4,
                       {.block_count = 128, .block_size = 512},
                       block_backend);
    blocks.start(1);
    FlatFileServer files(server_machine_, Port(0xF17E), scheme(), 5,
                         blocks.put_port(), file_backend);
    files.start(1);
    FlatFileClient client(transport_, files.put_port());
    file_cap = client.create().value();
    ASSERT_TRUE(client.write(file_cap, 100, payload).ok());
    // An allocate+free pair journaled before the crash: its disk block
    // must come back FREE after replay (the dispose hook returns it),
    // not leak as an orphan allocation.
    BlockClient raw(transport_, blocks.put_port());
    const auto scratch = raw.allocate().value();
    ASSERT_TRUE(raw.write(scratch, Buffer{42}).ok());
    ASSERT_TRUE(raw.free_block(scratch).ok());
  }
  // Crash BOTH servers; restart both from their volumes.
  const auto block_image = block_backend->capture();
  const auto file_image = file_backend->capture();
  BlockServer blocks(server_machine_, Port(0xB10C), scheme(), 40,
                     {.block_count = 128, .block_size = 512}, block_image);
  blocks.start(1);
  FlatFileServer files(server_machine_, Port(0xF17E), scheme(), 50,
                       blocks.put_port(), file_image);
  files.start(1);
  transport_.flush_cache();
  FlatFileClient client(transport_, files.put_port());
  // The file capability survived the file server's crash, its inode's
  // BLOCK capabilities survived the block server's crash, and the block
  // content came back out of the journaled disk.
  EXPECT_EQ(client.size(file_cap).value(), 3100u);
  const auto read_back = client.read(file_cap, 100, payload.size());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), payload);
  // Holes read as zeros, as before the crash.
  const auto hole = client.read(file_cap, 0, 10);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(hole.value(), Buffer(10, 0));
  // Free-count exactness across the crash: the 3100-byte file holds 7
  // 512-byte blocks; the freed scratch block was returned during replay.
  BlockClient raw(transport_, blocks.put_port());
  EXPECT_EQ(raw.info().value().free_blocks, 128u - 7u);
  // And the recovered stack still takes writes.
  EXPECT_TRUE(client.write(file_cap, 0, Buffer{1, 2, 3}).ok());
}

TEST_F(ServerRestartSuite, MultiversionRecoversVersionsAndDrafts) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  core::Capability file;
  core::Capability draft;
  const Buffer v1_page(64, 0xAB);
  const Buffer draft_page(64, 0xCD);
  {
    MultiVersionServer mv(server_machine_, Port(0x3141), scheme(), 6, 256,
                          backend);
    mv.start(1);
    MultiVersionClient client(transport_, mv.put_port());
    file = client.create_file().value();
    const auto d1 = client.new_version(file).value();
    ASSERT_TRUE(client.write_page(d1, 2, v1_page).ok());
    ASSERT_TRUE(client.commit(d1).ok());
    draft = client.new_version(file).value();
    ASSERT_TRUE(client.write_page(draft, 3, draft_page).ok());
    // Crash with the draft still in flight.
  }
  const auto image = backend->capture();
  MultiVersionServer mv(server_machine_, Port(0x3141), scheme(), 60, 256,
                        image);
  mv.start(1);
  transport_.flush_cache();
  MultiVersionClient client(transport_, mv.put_port());
  // Committed history survived, content-exact.
  EXPECT_EQ(client.history(file).value(), 2u);
  auto page = client.read_page(file, 2, 1);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(Buffer(page.value().begin(), page.value().begin() + 64), v1_page);
  // The in-flight draft survived too: its pages read back and it commits.
  page = client.read_page(draft, 3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(Buffer(page.value().begin(), page.value().begin() + 64),
            draft_page);
  ASSERT_TRUE(client.commit(draft).ok());
  EXPECT_EQ(client.history(file).value(), 3u);
}

TEST_F(ServerRestartSuite, MemoryServerRecoversSegmentsAndBudget) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  core::Capability segment;
  core::Capability process;
  {
    kernel::MemoryServer mem(server_machine_, Port(0x3E3), scheme(), 7,
                             1 << 20, backend);
    mem.start(1);
    kernel::MemoryClient client(transport_, mem.put_port());
    segment = client.create_segment(4096).value();
    ASSERT_TRUE(client.write(segment, 10, Buffer{1, 2, 3, 4}).ok());
    const std::vector<core::Capability> image_segments{segment};
    process = client.make_process(image_segments).value();
    ASSERT_TRUE(client.start(process).ok());
    EXPECT_EQ(mem.memory_in_use(), 4096u);
  }
  const auto image = backend->capture();
  kernel::MemoryServer mem(server_machine_, Port(0x3E3), scheme(), 70,
                           1 << 20, image);
  mem.start(1);
  transport_.flush_cache();
  kernel::MemoryClient client(transport_, mem.put_port());
  // Budget is derived state, recomputed from the recovered segments.
  EXPECT_EQ(mem.memory_in_use(), 4096u);
  const auto bytes = client.read(segment, 10, 4);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), (Buffer{1, 2, 3, 4}));
  const auto info = client.process_info(process);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, kernel::ProcessState::running);
  EXPECT_EQ(info.value().segment_count, 1u);
  // Deleting the recovered segment returns its budget.
  ASSERT_TRUE(client.delete_segment(segment).ok());
  EXPECT_EQ(mem.memory_in_use(), 0u);
}

TEST_F(ServerRestartSuite, FileBackendSurvivesRealProcessBoundaryShape) {
  // The FileBackend round trip: everything above used MemoryBackend
  // captures; this is the on-disk shape a real restart would use.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-crash-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  core::Capability account;
  core::Capability master;
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    BankServer bank(server_machine_, Port(0xF11E), scheme(), 8, backend);
    bank.start(1);
    BankClient client(transport_, bank.put_port());
    account = client.create_account().value();
    master = bank.master_capability();
    ASSERT_TRUE(
        client.mint(master, account, currency::kDollar, 123).ok());
  }
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    BankServer bank(server_machine_, Port(0xF11E), scheme(), 80, backend);
    bank.start(1);
    transport_.flush_cache();
    BankClient client(transport_, bank.put_port());
    EXPECT_EQ(client.balance(account, currency::kDollar).value(), 123);
    // The recovered master capability still mints.
    EXPECT_EQ(core::pack(bank.master_capability()), core::pack(master));
    EXPECT_TRUE(
        client.mint(master, account, currency::kDollar, 1).ok());
    EXPECT_EQ(client.balance(account, currency::kDollar).value(), 124);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// io_uring SIGKILL: a cycle submitted to the committer but whose SQEs
// never completed must die with the process -- its tickets were never
// released, so losing it breaks no durability promise -- while every
// acknowledged record recovers through the plain (fallback) FileBackend.

TEST(UringCrashSuite, SigkillWithCqesPendingLosesOnlyUnacknowledgedRecords) {
  if (!storage::UringFileBackend::available()) {
    GTEST_SKIP() << "io_uring unavailable (probe or AMOEBA_NO_URING)";
  }
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-uring-crash-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  constexpr std::uint32_t kDurable = 16;
  constexpr std::uint32_t kHeldObject = 999;

  const pid_t child = ::fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: never returns into gtest.  Success is dying by SIGKILL with
    // one cycle claimed-but-unpushed; any other exit is a harness bug.
    try {
      auto backend = std::make_shared<storage::UringFileBackend>(dir, 4);
      storage::GroupCommitter committer(backend);
      storage::GroupCommitter::Ticket last = 0;
      for (std::uint32_t i = 0; i < kDurable; ++i) {
        Buffer record;
        storage::encode_record({storage::RecordType::mutate,
                                ObjectNumber(i), 0x5EC2E7, i + 1,
                                Buffer{1}},
                               record);
        last = committer.enqueue(i % 4, record);
      }
      committer.wait_durable(last);  // the acknowledged prefix
      // Hold the ring: the flusher claims and submits the next cycle, but
      // its SQEs never reach the kernel -- the exact
      // submitted-but-uncompleted window a power cut can hit.
      backend->set_hold_submissions(true);
      Buffer held;
      storage::encode_record({storage::RecordType::mutate,
                              ObjectNumber(kHeldObject), 0x5EC2E7, 99,
                              Buffer{2}},
                             held);
      (void)committer.enqueue(0, held);
      for (int i = 0; i < 2000 && committer.stats().inflight_cycles == 0;
           ++i) {
        std::this_thread::sleep_for(1ms);
      }
      if (committer.stats().inflight_cycles == 0) {
        std::_Exit(3);  // the held cycle was never claimed
      }
      ::kill(::getpid(), SIGKILL);
    } catch (...) {
    }
    std::_Exit(4);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited with status " << status
      << " instead of dying by SIGKILL";

  // Recovery through the plain FileBackend (what a post-crash boot on a
  // ringless kernel would use): all acknowledged records, no trace of the
  // held cycle.
  storage::FileBackend reopened(dir, 4);
  std::size_t decoded = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    bool torn = false;
    for (const auto& record :
         storage::decode_journal(reopened.read_journal(s), &torn)) {
      EXPECT_NE(record.object.value(), kHeldObject)
          << "an unacknowledged record surfaced after the crash";
      ++decoded;
    }
    EXPECT_FALSE(torn) << "shard " << s;
  }
  EXPECT_EQ(decoded, kDurable);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amoeba::servers
