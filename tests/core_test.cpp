// Tests for the capability engine: Fig. 2 layout, the four protection
// schemes (mint/validate, tamper resistance, restriction, revocation), and
// the ObjectStore used by every server.
#include <gtest/gtest.h>

#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace amoeba::core {
namespace {

constexpr Port kServerPort{0xABCDEF123456ULL};

// ------------------------------------------------------------- capability

TEST(CapabilityLayout, PackUnpackRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Capability cap{Port(rng.bits(48)), ObjectNumber(static_cast<std::uint32_t>(rng.bits(24))),
                         Rights(static_cast<std::uint8_t>(rng.bits(8))),
                         CheckField(rng.bits(48))};
    EXPECT_EQ(unpack(pack(cap)), cap);
  }
}

TEST(CapabilityLayout, FieldsOccupyDocumentedBytes) {
  const Capability cap{Port(0x665544332211ULL), ObjectNumber(0xCCBBAA),
                       Rights(0xEE), CheckField(0x0F0E0D0C0B0AULL)};
  const CapabilityBytes b = pack(cap);
  // Port: bytes 0..5 little-endian.
  EXPECT_EQ(b[0], 0x11);
  EXPECT_EQ(b[5], 0x66);
  // Object: bytes 6..8.
  EXPECT_EQ(b[6], 0xAA);
  EXPECT_EQ(b[8], 0xCC);
  // Rights: byte 9.
  EXPECT_EQ(b[9], 0xEE);
  // Check: bytes 10..15.
  EXPECT_EQ(b[10], 0x0A);
  EXPECT_EQ(b[15], 0x0F);
}

TEST(CapabilityLayout, SixteenBytesTotal) {
  EXPECT_EQ(sizeof(CapabilityBytes), 16u);
  EXPECT_EQ(Port::kBits + ObjectNumber::kBits + Rights::kBits +
                CheckField::kBits,
            128);
}

TEST(CapabilityLayout, NullDetection) {
  EXPECT_TRUE(Capability{}.is_null());
  Capability cap{};
  cap.rights = Rights(1);
  EXPECT_FALSE(cap.is_null());
}

TEST(CapabilityLayout, EveryByteStringParses) {
  // Sparseness, not format, protects capabilities: parsing is total.
  CapabilityBytes garbage;
  Rng rng(2);
  rng.fill(garbage);
  const Capability cap = unpack(garbage);
  EXPECT_EQ(pack(cap), garbage);
}

// ----------------------------------------------------- scheme properties

class SchemeSuite : public ::testing::TestWithParam<SchemeKind> {
 protected:
  SchemeSuite() : rng_(static_cast<std::uint64_t>(GetParam()) + 100) {
    scheme_ = make_scheme(GetParam(), rng_);
  }

  Rng rng_;
  std::shared_ptr<const ProtectionScheme> scheme_;
};

TEST_P(SchemeSuite, MintThenValidateGrantsMintedRights) {
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t secret = scheme_->new_secret(rng_);
    const Rights rights(static_cast<std::uint8_t>(rng_.bits(8)));
    const Capability cap =
        scheme_->mint(kServerPort, ObjectNumber(7), secret, rights);
    const auto granted = scheme_->validate(cap, secret);
    ASSERT_TRUE(granted.ok()) << scheme_name(GetParam());
    if (GetParam() == SchemeKind::simple) {
      EXPECT_EQ(granted.value(), Rights::all());
    } else {
      EXPECT_EQ(granted.value(), rights);
    }
  }
}

TEST_P(SchemeSuite, WrongSecretFailsValidation) {
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(1), secret, Rights::all());
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t other = scheme_->new_secret(rng_);
    if (other == secret) continue;
    EXPECT_FALSE(scheme_->validate(cap, other).ok());
  }
}

TEST_P(SchemeSuite, CheckFieldTamperAnyBitFails) {
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Rights minted(0x2D);
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(3), secret, minted);
  for (int bit = 0; bit < CheckField::kBits; ++bit) {
    Capability tampered = cap;
    tampered.check = CheckField(cap.check.value() ^ (1ULL << bit));
    EXPECT_FALSE(scheme_->validate(tampered, secret).ok())
        << scheme_name(GetParam()) << " check bit " << bit;
  }
}

TEST_P(SchemeSuite, RightsTamperNeverGainsRights) {
  // The universal security property: no bit-flip in the RIGHTS field may
  // yield a capability the server accepts with MORE rights than minted.
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Rights minted(0x0F);  // low four rights
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(5), secret, minted);
  const auto base = scheme_->validate(cap, secret);
  ASSERT_TRUE(base.ok());
  for (int bit = 0; bit < Rights::kBits; ++bit) {
    Capability tampered = cap;
    tampered.rights = Rights(static_cast<std::uint8_t>(
        cap.rights.bits() ^ (1u << bit)));
    const auto granted = scheme_->validate(tampered, secret);
    if (granted.ok()) {
      EXPECT_TRUE(granted.value().subset_of(base.value()))
          << scheme_name(GetParam()) << " rights bit " << bit
          << " tampering gained rights";
    }
  }
}

TEST_P(SchemeSuite, RightsTamperDetectedByRightsProtectingSchemes) {
  // Schemes 1-3 exist precisely to protect the rights field; any flip must
  // be rejected outright, not merely downgraded.
  if (GetParam() == SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 does not protect rights (by design)";
  }
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(5), secret, Rights(0x55));
  for (int bit = 0; bit < Rights::kBits; ++bit) {
    Capability tampered = cap;
    tampered.rights = Rights(static_cast<std::uint8_t>(
        cap.rights.bits() ^ (1u << bit)));
    EXPECT_FALSE(scheme_->validate(tampered, secret).ok())
        << scheme_name(GetParam()) << " rights bit " << bit;
  }
}

TEST_P(SchemeSuite, ForgedCheckFieldGuessingFails) {
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(9), secret, Rights::all());
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    Capability forged = cap;
    forged.check = CheckField(rng_.bits(48));
    if (forged.check == cap.check) continue;
    hits += scheme_->validate(forged, secret).ok();
  }
  EXPECT_EQ(hits, 0) << scheme_name(GetParam());
}

TEST_P(SchemeSuite, LocalRestrictOnlyOnCommutative) {
  const std::uint64_t secret = scheme_->new_secret(rng_);
  const Capability cap =
      scheme_->mint(kServerPort, ObjectNumber(2), secret, Rights::all());
  const auto restricted = scheme_->restrict_local(cap, rights::kWriteBit);
  if (GetParam() == SchemeKind::commutative) {
    EXPECT_TRUE(scheme_->supports_local_restrict());
    ASSERT_TRUE(restricted.ok());
    const auto granted = scheme_->validate(restricted.value(), secret);
    ASSERT_TRUE(granted.ok());
    EXPECT_FALSE(granted.value().has(rights::kWriteBit));
    EXPECT_TRUE(granted.value().has(rights::kReadBit));
  } else {
    EXPECT_FALSE(scheme_->supports_local_restrict());
    EXPECT_EQ(restricted.error(), ErrorCode::no_such_operation);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSuite,
                         ::testing::Values(SchemeKind::simple,
                                           SchemeKind::encrypted,
                                           SchemeKind::one_way_xor,
                                           SchemeKind::commutative),
                         [](const auto& info) {
                           return scheme_name(info.param);
                         });

// -------------------------------------------- commutative scheme details

class CommutativeDetails : public ::testing::Test {
 protected:
  CommutativeDetails() : rng_(77), scheme_(rng_) {}
  Rng rng_;
  CommutativeScheme scheme_;
};

TEST_F(CommutativeDetails, RestrictionOrderIsIrrelevant) {
  const std::uint64_t secret = scheme_.new_secret(rng_);
  const Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(1), secret, Rights::all());
  // Delete rights 0, 2, 5 in two different orders.
  Capability a = cap;
  for (int bit : {0, 2, 5}) {
    a = scheme_.restrict_local(a, bit).value();
  }
  Capability b = cap;
  for (int bit : {5, 0, 2}) {
    b = scheme_.restrict_local(b, bit).value();
  }
  EXPECT_EQ(a, b);
  const auto granted = scheme_.validate(a, secret);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted.value().bits(), Rights::all().without(0).without(2)
                                        .without(5).bits());
}

TEST_F(CommutativeDetails, RestrictingAbsentRightRejected) {
  const std::uint64_t secret = scheme_.new_secret(rng_);
  Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(1), secret, Rights::all());
  cap = scheme_.restrict_local(cap, 3).value();
  EXPECT_EQ(scheme_.restrict_local(cap, 3).error(),
            ErrorCode::permission_denied);
}

TEST_F(CommutativeDetails, ReAddingARightByBitFlipFails) {
  // A holder who deleted a right cannot get it back by flipping the
  // plaintext bit: the check field has been pushed through F_k, which is
  // one-way.
  const std::uint64_t secret = scheme_.new_secret(rng_);
  Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(1), secret, Rights::all());
  cap = scheme_.restrict_local(cap, rights::kWriteBit).value();
  Capability forged = cap;
  forged.rights = forged.rights.with(rights::kWriteBit);
  EXPECT_FALSE(scheme_.validate(forged, secret).ok());
}

TEST_F(CommutativeDetails, RightsFieldIsAdvisoryOnly) {
  // "In theory at least, the RIGHTS field is not even needed, since the
  // server could try all 2^N combinations" -- equivalently: the check
  // field alone determines validity for a claimed rights value.
  const std::uint64_t secret = scheme_.new_secret(rng_);
  const Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(1), secret, Rights(0x7F));
  // Claiming the true rights with the true check succeeds; any other
  // claimed rights value with that same check fails.
  for (int claimed = 0; claimed < 256; ++claimed) {
    Capability probe = cap;
    probe.rights = Rights(static_cast<std::uint8_t>(claimed));
    const bool valid = scheme_.validate(probe, secret).ok();
    EXPECT_EQ(valid, claimed == 0x7F);
  }
}

TEST_F(CommutativeDetails, RightsFieldRecoverableByExhaustiveSearch) {
  // "In theory at least, the RIGHTS field is not even needed, since the
  // server could try all 2^N combinations of the functions to see if any
  // worked.  Its presence merely speeds up the checking."
  const std::uint64_t secret = scheme_.new_secret(rng_);
  const Rights true_rights(0x5A);
  const Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(1), secret, true_rights);
  // The server receives only the check field and tries every subset.
  int matches = 0;
  Rights recovered;
  for (int candidate = 0; candidate < 256; ++candidate) {
    Capability probe = cap;
    probe.rights = Rights(static_cast<std::uint8_t>(candidate));
    if (scheme_.validate(probe, secret).ok()) {
      ++matches;
      recovered = probe.rights;
    }
  }
  EXPECT_EQ(matches, 1);
  EXPECT_EQ(recovered, true_rights);
}

TEST_F(CommutativeDetails, RestrictAfterServerMintWithPartialRights) {
  // Server mints read+write; holder deletes write locally; server accepts
  // the result as read-only.
  const std::uint64_t secret = scheme_.new_secret(rng_);
  const Capability rw = scheme_.mint(kServerPort, ObjectNumber(4), secret,
                                     rights::kRead.with(rights::kWriteBit));
  const auto ro = scheme_.restrict_local(rw, rights::kWriteBit);
  ASSERT_TRUE(ro.ok());
  const auto granted = scheme_.validate(ro.value(), secret);
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted.value(), rights::kRead);
}

TEST_F(CommutativeDetails, ClientReconstructedSchemeRestrictsCompatibly) {
  // A client holding only the published family parameters produces the
  // same restricted capability the server-side object would.
  const std::uint64_t secret = scheme_.new_secret(rng_);
  const Capability cap =
      scheme_.mint(kServerPort, ObjectNumber(6), secret, Rights::all());
  const CommutativeScheme client_side(crypto::CommutativeFamily(
      scheme_.family().modulus(), scheme_.family().exponents()));
  const auto restricted = client_side.restrict_local(cap, 1);
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(scheme_.validate(restricted.value(), secret).ok());
}

// ------------------------------------------------------------ ObjectStore

class ObjectStoreSuite : public ::testing::TestWithParam<SchemeKind> {
 protected:
  ObjectStoreSuite()
      : rng_(static_cast<std::uint64_t>(GetParam()) + 500),
        store_(make_scheme(GetParam(), rng_), kServerPort, 42) {}

  Rng rng_;
  ObjectStore<std::string> store_;
};

TEST_P(ObjectStoreSuite, CreateOpenRoundTrip) {
  const Capability cap = store_.create("hello");
  EXPECT_EQ(cap.server_port, kServerPort);
  auto opened = store_.open(cap, rights::kRead);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened.value().value, "hello");
  EXPECT_EQ(store_.live_count(), 1u);
}

TEST_P(ObjectStoreSuite, OpenUnknownObjectFails) {
  Capability cap = store_.create("x");
  cap.object = ObjectNumber(999);
  EXPECT_EQ(store_.open(cap, Rights::none()).error(),
            ErrorCode::no_such_object);
}

TEST_P(ObjectStoreSuite, ForgedCheckRejected) {
  Capability cap = store_.create("x");
  cap.check = CheckField(cap.check.value() ^ 1);
  EXPECT_EQ(store_.open(cap, Rights::none()).error(),
            ErrorCode::bad_capability);
}

TEST_P(ObjectStoreSuite, MissingRightDenied) {
  if (GetParam() == SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 cannot narrow rights";
  }
  const Capability cap = store_.create("x", rights::kRead);
  EXPECT_TRUE(store_.open(cap, rights::kRead).ok());
  EXPECT_EQ(store_.open(cap, rights::kWrite).error(),
            ErrorCode::permission_denied);
}

TEST_P(ObjectStoreSuite, ServerSideRestrictNarrows) {
  if (GetParam() == SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 cannot narrow rights";
  }
  const Capability cap = store_.create("x");
  const auto ro = store_.restrict(cap, rights::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_TRUE(store_.open(ro.value(), rights::kRead).ok());
  EXPECT_EQ(store_.open(ro.value(), rights::kWrite).error(),
            ErrorCode::permission_denied);
  // Restriction of the restricted capability cannot widen again.
  const auto widened = store_.restrict(ro.value(), Rights::all());
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(store_.open(widened.value(), rights::kWrite).error(),
            ErrorCode::permission_denied);
}

TEST_P(ObjectStoreSuite, RevocationKillsAllOutstandingCapabilities) {
  const Capability owner = store_.create("doc");
  const auto reader = store_.restrict(owner, rights::kRead);
  ASSERT_TRUE(reader.ok());
  const auto fresh = store_.revoke(owner);
  ASSERT_TRUE(fresh.ok());
  // Both old capabilities are dead, whatever their rights were.
  EXPECT_EQ(store_.open(owner, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_EQ(store_.open(reader.value(), Rights::none()).error(),
            ErrorCode::bad_capability);
  // The replacement works.
  EXPECT_TRUE(store_.open(fresh.value(), rights::kRead).ok());
}

TEST_P(ObjectStoreSuite, RevocationRequiresAdminRight) {
  if (GetParam() == SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 cannot narrow rights";
  }
  const Capability owner = store_.create("doc");
  const auto reader = store_.restrict(owner, rights::kRead);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(store_.revoke(reader.value()).error(),
            ErrorCode::permission_denied);
  // The failed attempt must not have rotated the secret.
  EXPECT_TRUE(store_.open(owner, Rights::none()).ok());
}

TEST_P(ObjectStoreSuite, DestroyFreesAndReusesSlotSafely) {
  const Capability first = store_.create("a");
  ASSERT_TRUE(store_.destroy(first).ok());
  EXPECT_EQ(store_.live_count(), 0u);
  EXPECT_EQ(store_.open(first, Rights::none()).error(),
            ErrorCode::no_such_object);
  // The slot is reused with a fresh secret: the old capability for the
  // same object number cannot touch the new object.
  const Capability second = store_.create("b");
  EXPECT_EQ(second.object, first.object);
  EXPECT_EQ(store_.open(first, Rights::none()).error(),
            ErrorCode::bad_capability);
  EXPECT_EQ(*store_.open(second, Rights::none()).value().value, "b");
}

TEST_P(ObjectStoreSuite, DestroyRequiresDestroyRight) {
  if (GetParam() == SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 cannot narrow rights";
  }
  const Capability cap = store_.create("a");
  const auto ro = store_.restrict(cap, rights::kRead);
  ASSERT_TRUE(ro.ok());
  EXPECT_EQ(store_.destroy(ro.value()).error(), ErrorCode::permission_denied);
  EXPECT_EQ(store_.live_count(), 1u);
}

TEST_P(ObjectStoreSuite, MintForDeadObjectFails) {
  const Capability cap = store_.create("a");
  ASSERT_TRUE(store_.destroy(cap).ok());
  EXPECT_EQ(store_.mint_for(cap.object, Rights::all()).error(),
            ErrorCode::no_such_object);
}

TEST_P(ObjectStoreSuite, ManyObjectsStayIndependent) {
  std::vector<Capability> caps;
  caps.reserve(200);
  for (int i = 0; i < 200; ++i) {
    caps.push_back(store_.create("obj" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    auto opened = store_.open(caps[static_cast<std::size_t>(i)], Rights::none());
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened.value().value, "obj" + std::to_string(i));
  }
  // A capability for object i never opens object j.
  Capability crossed = caps[0];
  crossed.object = caps[1].object;
  EXPECT_FALSE(store_.open(crossed, Rights::none()).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ObjectStoreSuite,
                         ::testing::Values(SchemeKind::simple,
                                           SchemeKind::encrypted,
                                           SchemeKind::one_way_xor,
                                           SchemeKind::commutative),
                         [](const auto& info) {
                           return scheme_name(info.param);
                         });

}  // namespace
}  // namespace amoeba::core
