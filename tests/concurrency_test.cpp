// Concurrency and stress tests: many clients against multi-worker
// services, invariant preservation under parallel mutation (conservation
// of money, file consistency, commit linearization), and races between
// delegation, revocation, and use.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/multiversion_server.hpp"

namespace amoeba {
namespace {

using namespace std::chrono_literals;

TEST(ConcurrencyTest, MoneyIsConservedUnderParallelTransfers) {
  net::Network net;
  net::Machine& host = net.add_machine("bank");
  Rng rng(1);
  servers::BankServer bank(host, Port(0xBA7C),
                           core::make_scheme(core::SchemeKind::one_way_xor, rng),
                           1);
  bank.start(4);  // four tellers

  rpc::Transport setup(net.add_machine("setup"), 2);
  servers::BankClient setup_client(setup, bank.put_port());
  constexpr int kAccounts = 8;
  constexpr std::int64_t kInitial = 10'000;
  std::vector<core::Capability> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(setup_client.create_account().value());
    ASSERT_TRUE(setup_client
                    .mint(bank.master_capability(), accounts.back(),
                          servers::currency::kDollar, kInitial)
                    .ok());
  }

  // Eight threads shuffle money between random account pairs.
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 100;
  std::atomic<int> completed{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        net::Machine& m = net.add_machine("client" + std::to_string(t));
        rpc::Transport transport(m, static_cast<std::uint64_t>(t) + 10);
        servers::BankClient client(transport, bank.put_port());
        Rng local(static_cast<std::uint64_t>(t) + 100);
        for (int i = 0; i < kTransfersPerThread; ++i) {
          const auto& from = accounts[local.below(kAccounts)];
          const auto& to = accounts[local.below(kAccounts)];
          const auto amount = static_cast<std::int64_t>(local.below(50)) + 1;
          const auto result =
              client.transfer(from, to, servers::currency::kDollar, amount);
          if (result.ok() ||
              result.error() == ErrorCode::insufficient_funds) {
            completed.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(completed.load(), kThreads * kTransfersPerThread);

  // Conservation: the total across all accounts is untouched.
  std::int64_t total = 0;
  for (const auto& account : accounts) {
    total += setup_client.balance(account, servers::currency::kDollar).value();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(ConcurrencyTest, ParallelFileWritersStayIsolated) {
  net::Network net;
  net::Machine& host = net.add_machine("host");
  Rng rng(2);
  const auto scheme = core::make_scheme(core::SchemeKind::encrypted, rng);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 2048;
  geometry.block_size = 128;
  servers::BlockServer blocks(host, Port(0xB10C), scheme, 1, geometry);
  blocks.start();
  servers::FlatFileServer files(host, Port(0xF17E), scheme, 2,
                                blocks.put_port());
  files.start(4);

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        net::Machine& m = net.add_machine("writer" + std::to_string(t));
        rpc::Transport transport(m, static_cast<std::uint64_t>(t) + 30);
        servers::FlatFileClient client(transport, files.put_port());
        const auto file = client.create();
        if (!file.ok()) {
          failures.fetch_add(1);
          return;
        }
        const auto tag = static_cast<std::uint8_t>('A' + t);
        for (int round = 0; round < 20; ++round) {
          const Buffer payload(300, tag);
          if (!client.write(file.value(),
                            static_cast<std::uint64_t>(round) * 300, payload)
                   .ok()) {
            failures.fetch_add(1);
            return;
          }
        }
        // Verify nobody else's bytes leaked into this file.
        const auto content = client.read(file.value(), 0, 20 * 300);
        if (!content.ok() || content.value().size() != 20 * 300) {
          failures.fetch_add(1);
          return;
        }
        for (const auto byte : content.value()) {
          if (byte != tag) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, CommitLinearizesUnderContention) {
  net::Network net;
  net::Machine& host = net.add_machine("archive");
  Rng rng(3);
  servers::MultiVersionServer server(
      host, Port(0x3171), core::make_scheme(core::SchemeKind::commutative, rng),
      1, 64);
  server.start(4);

  rpc::Transport setup(net.add_machine("setup"), 4);
  servers::MultiVersionClient setup_client(setup, server.put_port());
  const auto file = setup_client.create_file().value();

  constexpr int kThreads = 6;
  constexpr int kAttemptsPerThread = 15;
  std::atomic<int> wins{0};
  std::atomic<int> conflicts{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        net::Machine& m = net.add_machine("committer" + std::to_string(t));
        rpc::Transport transport(m, static_cast<std::uint64_t>(t) + 50);
        servers::MultiVersionClient client(transport, server.put_port());
        for (int i = 0; i < kAttemptsPerThread; ++i) {
          const auto draft = client.new_version(file);
          if (!draft.ok()) continue;
          (void)client.write_page(draft.value(), 0,
                                  Buffer{static_cast<std::uint8_t>(t)});
          const auto result = client.commit(draft.value());
          if (result.ok()) {
            wins.fetch_add(1);
          } else if (result.error() == ErrorCode::conflict) {
            conflicts.fetch_add(1);
            (void)client.abort(draft.value());
          }
        }
      });
    }
  }
  // Every win extended the linear history by exactly one version.
  const auto versions = setup_client.history(file).value();
  EXPECT_EQ(versions, 1u + static_cast<std::uint64_t>(wins.load()));
  EXPECT_GT(wins.load(), 0);
  // All attempts resolved one way or the other.
  EXPECT_EQ(wins.load() + conflicts.load(), kThreads * kAttemptsPerThread);
}

TEST(ConcurrencyTest, RevocationRacesWithUse) {
  // Readers hammer a delegated capability while the owner revokes midway:
  // every read must either succeed (before) or fail with bad_capability
  // (after) -- never crash, never partially succeed.
  net::Network net;
  net::Machine& host = net.add_machine("host");
  Rng rng(4);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer blocks(host, Port(0xB10C), scheme, 1, geometry);
  blocks.start(2);

  rpc::Transport owner_transport(net.add_machine("owner"), 5);
  servers::BlockClient owner(owner_transport, blocks.put_port());
  const auto cap = owner.allocate().value();
  ASSERT_TRUE(owner.write(cap, Buffer{1}).ok());
  const auto shared =
      servers::restrict_capability(owner_transport, cap, core::rights::kRead)
          .value();

  std::atomic<bool> revoked{false};
  std::atomic<int> anomalies{0};
  {
    std::vector<std::jthread> readers;
    for (int t = 0; t < 4; ++t) {
      readers.emplace_back([&, t] {
        net::Machine& m = net.add_machine("reader" + std::to_string(t));
        rpc::Transport transport(m, static_cast<std::uint64_t>(t) + 70);
        servers::BlockClient client(transport, blocks.put_port());
        for (int i = 0; i < 50; ++i) {
          // Sample the flag BEFORE sending: only a read issued strictly
          // after the revocation completed must fail (a reply already in
          // flight when the secret rotated may legitimately succeed).
          const bool issued_after_revoke =
              revoked.load(std::memory_order_acquire);
          const auto result = client.read(shared);
          if (result.ok()) {
            if (issued_after_revoke) {
              anomalies.fetch_add(1);
            }
          } else if (result.error() != ErrorCode::bad_capability) {
            anomalies.fetch_add(1);
          }
        }
      });
    }
    std::this_thread::sleep_for(5ms);
    const auto fresh = servers::revoke_capability(owner_transport, cap);
    ASSERT_TRUE(fresh.ok());
    revoked.store(true, std::memory_order_release);
  }
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(ConcurrencyTest, ManyMachinesManyServices) {
  // A wider deployment: 16 machines, four services, all clients active at
  // once; exercises the network registry and locate under contention.
  net::Network net;
  Rng rng(5);
  const auto scheme = core::make_scheme(core::SchemeKind::simple, rng);
  std::vector<std::unique_ptr<servers::BlockServer>> services;
  for (int s = 0; s < 4; ++s) {
    net::Machine& m = net.add_machine("server" + std::to_string(s));
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 64;
    geometry.block_size = 64;
    services.push_back(std::make_unique<servers::BlockServer>(
        m, Port(static_cast<std::uint64_t>(0x1000 + s)), scheme,
        static_cast<std::uint64_t>(s), geometry));
    services.back()->start();
  }
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < 12; ++c) {
      clients.emplace_back([&, c] {
        net::Machine& m = net.add_machine("client" + std::to_string(c));
        rpc::Transport transport(m, static_cast<std::uint64_t>(c) + 90);
        servers::BlockClient client(
            transport, services[static_cast<std::size_t>(c) % 4]->put_port());
        for (int i = 0; i < 10; ++i) {
          const auto cap = client.allocate();
          if (!cap.ok() || !client.write(cap.value(), Buffer{1}).ok() ||
              !client.free_block(cap.value()).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace amoeba
