// Unit tests for the durability substrate: journal record framing (torn
// tails, checksums), snapshot round trips, the Memory/File backends, and
// the durable ShardedObjectStore itself -- journaling, compaction, and
// snapshot+journal recovery with capability survival.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/record.hpp"

namespace amoeba::storage {
namespace {

TEST(RecordCodec, RoundTripsAllRecordTypes) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(7), 0xDEADBEEF, 1,
                 Buffer{1, 2, 3}},
                journal);
  encode_record({RecordType::mutate, ObjectNumber(7), 0, 2, Buffer{9}},
                journal);
  encode_record({RecordType::rotate, ObjectNumber(7), 0xFEED, 3, {}},
                journal);
  encode_record({RecordType::destroy, ObjectNumber(7), 0, 4, {}}, journal);
  bool torn = true;
  const auto records = decode_journal(journal, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, RecordType::create);
  EXPECT_EQ(records[0].object.value(), 7u);
  EXPECT_EQ(records[0].secret, 0xDEADBEEFu);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].payload, (Buffer{1, 2, 3}));
  EXPECT_EQ(records[1].type, RecordType::mutate);
  EXPECT_EQ(records[2].secret, 0xFEEDu);
  EXPECT_EQ(records[3].type, RecordType::destroy);
}

TEST(RecordCodec, TornTailStopsCleanly) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(1), 11, 1, Buffer{4, 5}},
                journal);
  const std::size_t intact = journal.size();
  encode_record({RecordType::create, ObjectNumber(2), 22, 2, Buffer{6}},
                journal);
  // A crash tore the second append: drop its last 3 bytes.
  journal.resize(journal.size() - 3);
  bool torn = false;
  const auto records = decode_journal(journal, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].object.value(), 1u);
  // The intact prefix alone parses clean.
  const auto prefix = decode_journal(
      std::span<const std::uint8_t>(journal.data(), intact), &torn);
  EXPECT_FALSE(torn);
  EXPECT_EQ(prefix.size(), 1u);
}

TEST(RecordCodec, CorruptChecksumEndsTheParse) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(1), 11, 1, Buffer{4}},
                journal);
  encode_record({RecordType::create, ObjectNumber(2), 22, 2, Buffer{5}},
                journal);
  journal[journal.size() - 1] ^= 0xFF;  // flip a body byte of record 2
  bool torn = false;
  const auto records = decode_journal(journal, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
}

TEST(SnapshotCodec, RoundTripsSlotsAndAppliedLsn) {
  std::vector<SnapshotSlot> slots;
  slots.push_back({ObjectNumber(3), 0xABC, Buffer{1}});
  slots.push_back({ObjectNumber(19), 0xDEF, Buffer{2, 3}});
  const Buffer image = encode_snapshot(slots, 42);
  std::vector<SnapshotSlot> out;
  std::uint64_t lsn = 0;
  ASSERT_TRUE(decode_snapshot(image, out, lsn));
  EXPECT_EQ(lsn, 42u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].object.value(), 3u);
  EXPECT_EQ(out[1].secret, 0xDEFu);
  // Empty input is a fresh shard; garbage is rejected.
  ASSERT_TRUE(decode_snapshot({}, out, lsn));
  EXPECT_TRUE(out.empty());
  const Buffer garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_FALSE(decode_snapshot(garbage, out, lsn));
}

TEST(MemoryBackendTest, JournalSnapshotMetaAndCapture) {
  MemoryBackend backend(4);
  EXPECT_TRUE(backend.empty());
  const Buffer a{1, 2, 3};
  backend.append_journal(1, a);
  EXPECT_FALSE(backend.empty());
  EXPECT_EQ(backend.read_journal(1), a);
  EXPECT_TRUE(backend.read_journal(0).empty());

  backend.put_meta("floors", Buffer{9});
  EXPECT_EQ(backend.get_meta("floors"), Buffer{9});
  EXPECT_TRUE(backend.get_meta("absent").empty());

  // Capture is a deep copy: later writes don't leak into the image.
  const auto image = backend.capture();
  backend.append_journal(1, Buffer{4});
  backend.install_snapshot(1, Buffer{7, 7});
  EXPECT_EQ(image->read_journal(1), a);
  EXPECT_TRUE(image->read_snapshot(1).empty());
  // install_snapshot truncated the live journal (compaction contract).
  EXPECT_TRUE(backend.read_journal(1).empty());
  EXPECT_EQ(backend.read_snapshot(1), (Buffer{7, 7}));
}

TEST(MemoryBackendTest, AppendHookFiresWithRunningCount) {
  MemoryBackend backend(2);
  std::vector<std::uint64_t> counts;
  backend.set_append_hook([&](std::uint64_t n) { counts.push_back(n); });
  backend.append_journal(0, Buffer{1});
  backend.append_journal(1, Buffer{2});
  std::vector<ShardAppend> batch;
  batch.push_back({0, Buffer{3}});
  batch.push_back({1, Buffer{4}});
  backend.append_journal_batch(std::move(batch));
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 4u);  // the batch counts per entry, hooks once
  EXPECT_EQ(backend.append_count(), 4u);
}

TEST(FileBackendTest, PersistsAcrossReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-storage-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    FileBackend backend(dir, 2);
    EXPECT_TRUE(backend.empty());
    backend.append_journal(0, Buffer{1, 2});
    backend.append_journal(0, Buffer{3});
    backend.install_snapshot(1, Buffer{9, 9});
    backend.put_meta("reply-floors", Buffer{5});
  }
  {
    FileBackend backend(dir, 2);
    EXPECT_FALSE(backend.empty());
    EXPECT_EQ(backend.read_journal(0), (Buffer{1, 2, 3}));
    EXPECT_EQ(backend.read_snapshot(1), (Buffer{9, 9}));
    EXPECT_EQ(backend.get_meta("reply-floors"), Buffer{5});
    // Compaction truncates the journal durably too.
    backend.install_snapshot(0, Buffer{8});
  }
  {
    FileBackend backend(dir, 2);
    EXPECT_TRUE(backend.read_journal(0).empty());
    EXPECT_EQ(backend.read_snapshot(0), Buffer{8});
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amoeba::storage

namespace amoeba::core {
namespace {

constexpr Port kPort{0x5A5A5A5A5A5AULL};

[[nodiscard]] Durability<int> int_codec(
    std::shared_ptr<storage::Backend> backend, std::size_t compact_after = 0) {
  Durability<int> d;
  d.backend = std::move(backend);
  d.encode = [](Writer& w, const int& v) {
    w.u32(static_cast<std::uint32_t>(v));
  };
  d.decode = [](Reader& r, int& v) {
    v = static_cast<int>(r.u32());
    return r.ok();
  };
  if (compact_after != 0) {
    d.compact_after = compact_after;
  }
  return d;
}

[[nodiscard]] std::shared_ptr<const ProtectionScheme> scheme() {
  static const std::shared_ptr<const ProtectionScheme> shared = [] {
    Rng rng(17);
    return std::shared_ptr<const ProtectionScheme>(
        make_scheme(SchemeKind::one_way_xor, rng));
  }();
  return shared;
}

TEST(DurableStore, RecoversObjectsSecretsAndFreeList) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  {
    ObjectStore<int> store(scheme(), kPort, 1, 16, int_codec(backend));
    EXPECT_TRUE(store.durable());
    for (int i = 0; i < 40; ++i) {
      caps.push_back(store.create(i));
    }
    // Mutate one through the accessor hook, destroy another.
    {
      auto opened = store.open(caps[5], Rights::all());
      ASSERT_TRUE(opened.ok());
      *opened.value().value = 555;
      opened.value().mark_dirty();
    }
    ASSERT_TRUE(store.destroy(caps[7]).ok());
    const auto stats = store.durability_stats();
    EXPECT_EQ(stats.journal_records, 42u);  // 40 creates + mutate + destroy
    EXPECT_GT(stats.journal_bytes, 0u);
  }
  // "Restart": a fresh store on the same volume.
  ObjectStore<int> recovered(scheme(), kPort, 999, 16, int_codec(backend));
  const auto stats = recovered.durability_stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.recovered_objects, 39u);
  EXPECT_EQ(recovered.live_count(), 39u);
  // Every pre-crash capability validates against the recovered table.
  for (int i = 0; i < 40; ++i) {
    auto opened = recovered.open(caps[static_cast<std::size_t>(i)],
                                 rights::kRead);
    if (i == 7) {
      EXPECT_FALSE(opened.ok()) << "destroyed object resurrected";
      continue;
    }
    ASSERT_TRUE(opened.ok()) << "capability " << i << " died in the crash";
    EXPECT_EQ(*opened.value().value, i == 5 ? 555 : i);
  }
  // The destroyed number is reusable -- and the stale capability for it
  // still cannot resurrect (fresh secret on reuse).
  const Capability reused = recovered.create(700);
  EXPECT_FALSE(recovered.open(caps[7], Rights::none()).ok());
  EXPECT_TRUE(recovered.open(reused, Rights::none()).ok());
}

TEST(DurableStore, RevocationSurvivesRestart) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability original;
  Capability fresh;
  {
    ObjectStore<int> store(scheme(), kPort, 2, 16, int_codec(backend));
    original = store.create(1);
    fresh = store.revoke(original).value();
  }
  ObjectStore<int> recovered(scheme(), kPort, 3, 16, int_codec(backend));
  EXPECT_FALSE(recovered.open(original, Rights::none()).ok());
  EXPECT_TRUE(recovered.open(fresh, Rights::none()).ok());
}

TEST(DurableStore, PairMutationsJournalAtomically) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 4, 16, int_codec(backend));
  const Capability a = store.create(10);
  const Capability b = store.create(20);
  const auto before = backend->append_count();
  {
    auto pair = store.open2(a, Rights::none(), b, Rights::none());
    ASSERT_TRUE(pair.ok());
    *pair.value().a.value = 11;
    *pair.value().b.value = 21;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }
  // Both mutates landed, delivered as one batch (one hook firing).
  EXPECT_EQ(backend->append_count(), before + 2);
  ObjectStore<int> recovered(scheme(), kPort, 5, 16, int_codec(backend));
  EXPECT_EQ(*recovered.open(a, Rights::none()).value().value, 11);
  EXPECT_EQ(*recovered.open(b, Rights::none()).value().value, 21);
}

TEST(DurableStore, CompactionFoldsJournalIntoSnapshot) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  {
    ObjectStore<int> store(scheme(), kPort, 6, 16,
                           int_codec(backend, /*compact_after=*/3));
    for (int i = 0; i < 64; ++i) {
      caps.push_back(store.create(i));
    }
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 64; ++i) {
        auto opened = store.open(caps[static_cast<std::size_t>(i)],
                                 Rights::all());
        *opened.value().value += 100;
        opened.value().mark_dirty();
      }
    }
    EXPECT_GT(store.durability_stats().snapshots, 0u);
  }
  ObjectStore<int> recovered(scheme(), kPort, 7, 16,
                             int_codec(backend, 3));
  ASSERT_EQ(recovered.live_count(), 64u);
  for (int i = 0; i < 64; ++i) {
    auto opened =
        recovered.open(caps[static_cast<std::size_t>(i)], Rights::none());
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened.value().value, i + 300);
  }
}

TEST(DurableStore, ExplicitCompactThenRecoverIsExact) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability cap;
  {
    ObjectStore<int> store(scheme(), kPort, 8, 16, int_codec(backend));
    cap = store.create(1);
    {
      auto opened = store.open(cap, Rights::all());
      *opened.value().value = 2;
      opened.value().mark_dirty();
    }  // accessor released (and journaled) before compaction
    store.compact();
  }
  // After compaction the journals are empty; the snapshot alone recovers.
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_TRUE(backend->read_journal(s).empty());
  }
  ObjectStore<int> recovered(scheme(), kPort, 9, 16, int_codec(backend));
  EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 2);
}

TEST(DurableStore, TornJournalTailLosesOnlyTheTornRecord) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 10, 16, int_codec(backend));
  const Capability a = store.create(1);  // lands in shard of object 0
  const Capability b = store.create(2);
  // Simulate a crash that tore b's create record: rebuild a volume with
  // b's shard journal truncated mid-frame.
  auto torn = std::make_shared<storage::MemoryBackend>(16);
  for (std::size_t s = 0; s < 16; ++s) {
    Buffer journal = backend->read_journal(s);
    if (s == (b.object.value() & 15u) && !journal.empty()) {
      journal.resize(journal.size() - 2);
    }
    if (!journal.empty()) {
      torn->append_journal(s, journal);
    }
  }
  ObjectStore<int> recovered(scheme(), kPort, 11, 16, int_codec(torn));
  EXPECT_TRUE(recovered.open(a, Rights::none()).ok());
  EXPECT_FALSE(recovered.open(b, Rights::none()).ok());
}

TEST(DurableStore, MismatchedShardCountIsRejected) {
  auto backend = std::make_shared<storage::MemoryBackend>(8);
  EXPECT_THROW(ObjectStore<int>(scheme(), kPort, 1, 16, int_codec(backend)),
               UsageError);
}

TEST(DurableStore, FileBackendRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-durable-store-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Capability cap;
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    ObjectStore<int> store(scheme(), kPort, 12, 16, int_codec(backend));
    cap = store.create(41);
    auto opened = store.open(cap, Rights::all());
    *opened.value().value = 42;
    opened.value().mark_dirty();
  }
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    ObjectStore<int> recovered(scheme(), kPort, 13, 16, int_codec(backend));
    EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 42);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amoeba::core
