// Unit tests for the durability substrate: journal record framing (torn
// tails, checksums), snapshot round trips, the Memory/File backends, and
// the durable ShardedObjectStore itself -- journaling, compaction, and
// snapshot+journal recovery with capability survival.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/record.hpp"
#include "amoeba/storage/uring_backend.hpp"

namespace amoeba::storage {
namespace {

TEST(RecordCodec, RoundTripsAllRecordTypes) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(7), 0xDEADBEEF, 1,
                 Buffer{1, 2, 3}},
                journal);
  encode_record({RecordType::mutate, ObjectNumber(7), 0, 2, Buffer{9}},
                journal);
  encode_record({RecordType::rotate, ObjectNumber(7), 0xFEED, 3, {}},
                journal);
  encode_record({RecordType::destroy, ObjectNumber(7), 0, 4, {}}, journal);
  bool torn = true;
  const auto records = decode_journal(journal, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, RecordType::create);
  EXPECT_EQ(records[0].object.value(), 7u);
  EXPECT_EQ(records[0].secret, 0xDEADBEEFu);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].payload, (Buffer{1, 2, 3}));
  EXPECT_EQ(records[1].type, RecordType::mutate);
  EXPECT_EQ(records[2].secret, 0xFEEDu);
  EXPECT_EQ(records[3].type, RecordType::destroy);
}

TEST(RecordCodec, DeltaRecordRoundTrips) {
  Buffer journal;
  encode_record({RecordType::delta, ObjectNumber(9), 0xCAFE, 5,
                 Buffer{0xAA, 0xBB}},
                journal);
  bool torn = true;
  const auto records = decode_journal(journal, &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, RecordType::delta);
  EXPECT_EQ(records[0].object.value(), 9u);
  EXPECT_EQ(records[0].secret, 0xCAFEu);
  EXPECT_EQ(records[0].lsn, 5u);
  EXPECT_EQ(records[0].payload, (Buffer{0xAA, 0xBB}));
  // One past the last known type is rejected, ending the parse.
  Buffer bad;
  encode_record({static_cast<RecordType>(
                     static_cast<std::uint8_t>(RecordType::delta) + 1),
                 ObjectNumber(1), 0, 1, {}},
                bad);
  torn = false;
  EXPECT_TRUE(decode_journal(bad, &torn).empty());
  EXPECT_TRUE(torn);
}

TEST(RecordCodec, TornTailStopsCleanly) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(1), 11, 1, Buffer{4, 5}},
                journal);
  const std::size_t intact = journal.size();
  encode_record({RecordType::create, ObjectNumber(2), 22, 2, Buffer{6}},
                journal);
  // A crash tore the second append: drop its last 3 bytes.
  journal.resize(journal.size() - 3);
  bool torn = false;
  const auto records = decode_journal(journal, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].object.value(), 1u);
  // The intact prefix alone parses clean.
  const auto prefix = decode_journal(
      std::span<const std::uint8_t>(journal.data(), intact), &torn);
  EXPECT_FALSE(torn);
  EXPECT_EQ(prefix.size(), 1u);
}

TEST(RecordCodec, CorruptChecksumEndsTheParse) {
  Buffer journal;
  encode_record({RecordType::create, ObjectNumber(1), 11, 1, Buffer{4}},
                journal);
  encode_record({RecordType::create, ObjectNumber(2), 22, 2, Buffer{5}},
                journal);
  journal[journal.size() - 1] ^= 0xFF;  // flip a body byte of record 2
  bool torn = false;
  const auto records = decode_journal(journal, &torn);
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
}

TEST(SnapshotCodec, RoundTripsSlotsAndAppliedLsn) {
  std::vector<SnapshotSlot> slots;
  slots.push_back({ObjectNumber(3), 0xABC, Buffer{1}});
  slots.push_back({ObjectNumber(19), 0xDEF, Buffer{2, 3}});
  const Buffer image = encode_snapshot(slots, 42);
  std::vector<SnapshotSlot> out;
  std::uint64_t lsn = 0;
  ASSERT_TRUE(decode_snapshot(image, out, lsn));
  EXPECT_EQ(lsn, 42u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].object.value(), 3u);
  EXPECT_EQ(out[1].secret, 0xDEFu);
  // Empty input is a fresh shard; garbage is rejected.
  ASSERT_TRUE(decode_snapshot({}, out, lsn));
  EXPECT_TRUE(out.empty());
  const Buffer garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_FALSE(decode_snapshot(garbage, out, lsn));
}

TEST(MemoryBackendTest, JournalSnapshotMetaAndCapture) {
  MemoryBackend backend(4);
  EXPECT_TRUE(backend.empty());
  const Buffer a{1, 2, 3};
  backend.append_journal(1, a);
  EXPECT_FALSE(backend.empty());
  EXPECT_EQ(backend.read_journal(1), a);
  EXPECT_TRUE(backend.read_journal(0).empty());

  backend.put_meta("floors", Buffer{9});
  EXPECT_EQ(backend.get_meta("floors"), Buffer{9});
  EXPECT_TRUE(backend.get_meta("absent").empty());

  // Capture is a deep copy: later writes don't leak into the image.
  const auto image = backend.capture();
  backend.append_journal(1, Buffer{4});
  backend.install_snapshot(1, Buffer{7, 7});
  EXPECT_EQ(image->read_journal(1), a);
  EXPECT_TRUE(image->read_snapshot(1).empty());
  // install_snapshot truncated the live journal (compaction contract).
  EXPECT_TRUE(backend.read_journal(1).empty());
  EXPECT_EQ(backend.read_snapshot(1), (Buffer{7, 7}));
}

TEST(MemoryBackendTest, AppendHookFiresWithRunningCount) {
  MemoryBackend backend(2);
  std::vector<std::uint64_t> counts;
  backend.set_append_hook([&](std::uint64_t n) { counts.push_back(n); });
  backend.append_journal(0, Buffer{1});
  backend.append_journal(1, Buffer{2});
  std::vector<ShardAppend> batch;
  batch.push_back({0, Buffer{3}});
  batch.push_back({1, Buffer{4}});
  backend.append_journal_batch(std::move(batch));
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 4u);  // the batch counts per entry, hooks once
  EXPECT_EQ(backend.append_count(), 4u);
}

TEST(FileBackendTest, PersistsAcrossReopen) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-storage-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    FileBackend backend(dir, 2);
    EXPECT_TRUE(backend.empty());
    backend.append_journal(0, Buffer{1, 2});
    backend.append_journal(0, Buffer{3});
    backend.install_snapshot(1, Buffer{9, 9});
    backend.put_meta("reply-floors", Buffer{5});
  }
  {
    FileBackend backend(dir, 2);
    EXPECT_FALSE(backend.empty());
    EXPECT_EQ(backend.read_journal(0), (Buffer{1, 2, 3}));
    EXPECT_EQ(backend.read_snapshot(1), (Buffer{9, 9}));
    EXPECT_EQ(backend.get_meta("reply-floors"), Buffer{5});
    // Compaction truncates the journal durably too.
    backend.install_snapshot(0, Buffer{8});
  }
  {
    FileBackend backend(dir, 2);
    EXPECT_TRUE(backend.read_journal(0).empty());
    EXPECT_EQ(backend.read_snapshot(0), Buffer{8});
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ group commit

/// One framed record of a given object/lsn, for feeding the committer what
/// a real store would (decode_journal must parse what the flusher lands).
[[nodiscard]] Buffer frame(std::uint32_t object, std::uint64_t lsn) {
  Buffer out;
  encode_record({RecordType::mutate, ObjectNumber(object), 0x5EC2E7, lsn,
                 Buffer{static_cast<std::uint8_t>(object & 0xFF)}},
                out);
  return out;
}

[[nodiscard]] std::filesystem::path fresh_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("amoeba-") + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Drives the asynchronous submit contract synchronously: one group, block
/// until its completion reports, rethrow its error.  What a sync backend
/// completes inline, an io_uring backend completes from its reaper.
void submit_group_sync(Backend& backend, std::vector<ShardAppend>&& appends) {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  backend.submit_append_group(std::move(appends), [&](std::exception_ptr e) {
    const std::lock_guard lock(mutex);
    error = std::move(e);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return done; });
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

/// The commit-log suite runs against BOTH writers of the one on-disk
/// format: the sync FileBackend and, kernel permitting, UringFileBackend.
/// Recovery always reopens with the plain FileBackend -- a crash image
/// must recover the same regardless of which backend wrote it.
class CommitLogBackends : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::uring &&
        !UringFileBackend::available()) {
      GTEST_SKIP() << "io_uring unavailable (probe or AMOEBA_NO_URING)";
    }
  }
  [[nodiscard]] std::shared_ptr<FileBackend> make(
      const std::filesystem::path& dir, std::size_t shards) const {
    if (GetParam() == BackendKind::uring) {
      return std::make_shared<UringFileBackend>(dir, shards);
    }
    return std::make_shared<FileBackend>(dir, shards);
  }
};

INSTANTIATE_TEST_SUITE_P(CommitLog, CommitLogBackends,
                         ::testing::Values(BackendKind::file,
                                           BackendKind::uring),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(CommitLogBackends, GroupedAppendsRecoverAcrossReopen) {
  const auto dir = fresh_dir("commit-log");
  {
    auto backend = make(dir, 4);
    GroupCommitter committer(backend);
    (void)committer.enqueue(0, frame(10, 1));
    (void)committer.enqueue(2, frame(20, 1));
    const auto last = committer.enqueue(0, frame(11, 2));
    committer.wait_durable(last);
  }
  {
    FileBackend backend(dir, 4);
    EXPECT_FALSE(backend.empty());
    bool torn = true;
    const auto shard0 = decode_journal(backend.read_journal(0), &torn);
    EXPECT_FALSE(torn);
    ASSERT_EQ(shard0.size(), 2u);
    EXPECT_EQ(shard0[0].object.value(), 10u);
    EXPECT_EQ(shard0[0].lsn, 1u);
    EXPECT_EQ(shard0[1].object.value(), 11u);
    EXPECT_EQ(shard0[1].lsn, 2u);
    const auto shard2 = decode_journal(backend.read_journal(2), &torn);
    ASSERT_EQ(shard2.size(), 1u);
    EXPECT_EQ(shard2[0].object.value(), 20u);
  }
  std::filesystem::remove_all(dir);
}

TEST_P(CommitLogBackends, SyncAndGroupedAppendsMergeByLsn) {
  const auto dir = fresh_dir("commit-merge");
  auto backend = make(dir, 2);
  // Wall-time order: sync lsn 1, grouped lsn 2, sync lsn 3.  The grouped
  // record lives in commit.log, the sync ones in shard-0.journal; recovery
  // must splice them back into LSN order.
  backend->append_journal(0, frame(1, 1));
  std::vector<ShardAppend> group;
  group.push_back({0, frame(2, 2)});
  submit_group_sync(*backend, std::move(group));
  backend->append_journal(0, frame(3, 3));
  bool torn = true;
  const auto records = decode_journal(backend->read_journal(0), &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[1].lsn, 2u);
  EXPECT_EQ(records[2].lsn, 3u);
  EXPECT_EQ(records[1].object.value(), 2u);
  backend.reset();
  std::filesystem::remove_all(dir);
}

TEST_P(CommitLogBackends, TornGroupFrameDropsTheWholeGroup) {
  const auto dir = fresh_dir("commit-torn");
  {
    auto backend = make(dir, 2);
    std::vector<ShardAppend> first;
    first.push_back({0, frame(1, 1)});
    first.push_back({1, frame(2, 1)});
    submit_group_sync(*backend, std::move(first));
    std::vector<ShardAppend> second;
    second.push_back({0, frame(3, 2)});
    second.push_back({1, frame(4, 2)});
    submit_group_sync(*backend, std::move(second));
  }
  // Chop one byte off the tail: the second group's frame no longer
  // checksums.  Recovery must drop BOTH of its entries -- a multi-shard
  // group is never half-recovered -- while the first group survives whole.
  const auto log = dir / "commit.log";
  std::filesystem::resize_file(log, std::filesystem::file_size(log) - 1);
  {
    FileBackend backend(dir, 2);
    bool torn = true;
    const auto shard0 = decode_journal(backend.read_journal(0), &torn);
    EXPECT_FALSE(torn);
    ASSERT_EQ(shard0.size(), 1u);
    EXPECT_EQ(shard0[0].object.value(), 1u);
    const auto shard1 = decode_journal(backend.read_journal(1), &torn);
    ASSERT_EQ(shard1.size(), 1u);
    EXPECT_EQ(shard1[0].object.value(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST_P(CommitLogBackends, EveryTruncationAndBitFlipDropsExactlyTheTornGroup) {
  // Exhaustive crash-image sweep over the second group's region of
  // commit.log: truncation at EVERY length and a bit flip at EVERY byte
  // offset must each leave recovery holding exactly the first group --
  // never half of the second, never less than all of the first.
  const auto dir = fresh_dir("commit-fuzz");
  const auto log = dir / "commit.log";
  std::uintmax_t first_end = 0;
  {
    auto backend = make(dir, 2);
    std::vector<ShardAppend> first;
    first.push_back({0, frame(1, 1)});
    first.push_back({1, frame(2, 1)});
    submit_group_sync(*backend, std::move(first));
    first_end = std::filesystem::file_size(log);
    std::vector<ShardAppend> second;
    second.push_back({0, frame(3, 2)});
    second.push_back({1, frame(4, 2)});
    submit_group_sync(*backend, std::move(second));
  }
  Buffer pristine;
  {
    std::ifstream in(log, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), first_end);

  const auto write_log = [&](const Buffer& bytes) {
    std::ofstream out(log, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  };
  const auto expect_exactly_first_group = [&] {
    FileBackend backend(dir, 2);
    bool torn = true;
    const auto shard0 = decode_journal(backend.read_journal(0), &torn);
    EXPECT_FALSE(torn);
    ASSERT_EQ(shard0.size(), 1u);
    EXPECT_EQ(shard0[0].object.value(), 1u);
    EXPECT_EQ(shard0[0].lsn, 1u);
    const auto shard1 = decode_journal(backend.read_journal(1), &torn);
    ASSERT_EQ(shard1.size(), 1u);
    EXPECT_EQ(shard1[0].object.value(), 2u);
  };

  // Torn write: the crash image ends anywhere inside the second frame.
  for (std::size_t len = first_end; len < pristine.size(); ++len) {
    SCOPED_TRACE("truncate to " + std::to_string(len));
    write_log(Buffer(pristine.begin(),
                     pristine.begin() + static_cast<std::ptrdiff_t>(len)));
    expect_exactly_first_group();
  }
  // Rot: any single flipped bit in the second frame (length word,
  // checksum word, or body) trips the frame checksum.
  for (std::size_t at = first_end; at < pristine.size(); ++at) {
    SCOPED_TRACE("flip byte " + std::to_string(at));
    Buffer bent = pristine;
    bent[at] ^= 0x01;
    write_log(bent);
    expect_exactly_first_group();
  }
  // The unharmed image still recovers both groups (the sweep above did
  // not pass vacuously).
  write_log(pristine);
  {
    FileBackend backend(dir, 2);
    EXPECT_EQ(decode_journal(backend.read_journal(0)).size(), 2u);
    EXPECT_EQ(decode_journal(backend.read_journal(1)).size(), 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST_P(CommitLogBackends, SnapshotGcRewritesAwaySubsumedRecords) {
  const auto dir = fresh_dir("commit-gc");
  const auto log = dir / "commit.log";
  auto backend = make(dir, 2);
  // Push the log past the GC threshold (8 MiB) with shard-0 records, plus
  // a few shard-1 records that must survive the rewrite.
  constexpr std::uint64_t kShard0Records = 160000;
  Buffer run0;
  for (std::uint64_t lsn = 1; lsn <= kShard0Records; ++lsn) {
    encode_record({RecordType::mutate, ObjectNumber(100), 0x5EC2E7, lsn,
                   Buffer(24, 0xAB)},
                  run0);
  }
  std::vector<ShardAppend> group;
  group.push_back({0, std::move(run0)});
  group.push_back({1, frame(7, 1)});
  submit_group_sync(*backend, std::move(group));
  ASSERT_GT(std::filesystem::file_size(log), std::uint64_t{8} << 20);
  // A shard-0 snapshot at the top LSN subsumes every shard-0 record in the
  // log; installing it crosses the threshold and triggers the rewrite
  // (which on the uring backend first quiesces the ring: the inode swap
  // must not race in-flight chains).
  backend->install_snapshot(0, encode_snapshot({}, kShard0Records));
  EXPECT_LT(std::filesystem::file_size(log), 4096u);
  EXPECT_TRUE(decode_journal(backend->read_journal(0)).empty());
  const auto shard1 = decode_journal(backend->read_journal(1));
  ASSERT_EQ(shard1.size(), 1u);
  EXPECT_EQ(shard1[0].object.value(), 7u);
  // The rewrite reopened the append fd on the new inode: later groups land
  // in the rewritten log, not the unlinked one.
  std::vector<ShardAppend> after;
  after.push_back({0, frame(8, kShard0Records + 1)});
  submit_group_sync(*backend, std::move(after));
  const auto shard0 = decode_journal(backend->read_journal(0));
  ASSERT_EQ(shard0.size(), 1u);
  EXPECT_EQ(shard0[0].object.value(), 8u);
  backend.reset();
  std::filesystem::remove_all(dir);
}

TEST(GroupCommitTest, WaitCoversEveryEarlierTicket) {
  auto backend = std::make_shared<MemoryBackend>(4);
  GroupCommitter committer(backend);
  EXPECT_TRUE(committer.is_durable(0));  // 0 = nothing to wait for
  const auto t1 = committer.enqueue(0, frame(1, 1));
  const auto t2 = committer.enqueue(1, frame(2, 1));
  const auto t3 = committer.enqueue(0, frame(3, 2));
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  committer.wait_durable(t3);  // covers t1 and t2 too: one monotone LSN
  EXPECT_TRUE(committer.is_durable(t1));
  EXPECT_TRUE(committer.is_durable(t2));
  EXPECT_TRUE(committer.is_durable(t3));
  bool torn = true;
  const auto shard0 = decode_journal(backend->read_journal(0), &torn);
  EXPECT_FALSE(torn);
  ASSERT_EQ(shard0.size(), 2u);
  EXPECT_EQ(shard0[0].object.value(), 1u);
  EXPECT_EQ(shard0[1].object.value(), 3u);
  EXPECT_EQ(decode_journal(backend->read_journal(1), &torn).size(), 1u);
  const auto stats = committer.stats();
  EXPECT_EQ(stats.records, 3u);
  EXPECT_GE(stats.groups, 1u);
  EXPECT_GE(stats.max_group, 1u);
}

TEST(GroupCommitTest, GroupsNeverTearAcrossCaptureImages) {
  // Every flush cycle lands through append_journal_batch, so the memory
  // backend's barrier hook sees whole cycles -- and a cycle never splits
  // an enqueue_group.  Capture at every barrier: each image must hold
  // matched halves of every two-shard group (the bank-transfer shape).
  auto backend = std::make_shared<MemoryBackend>(2);
  std::vector<std::shared_ptr<MemoryBackend>> images;
  std::mutex images_mutex;
  backend->set_append_hook([&](std::uint64_t) {
    const std::lock_guard lock(images_mutex);
    images.push_back(backend->capture());
  });
  GroupCommitter committer(backend);
  GroupCommitter::Ticket last = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::vector<ShardAppend> group;
    group.push_back({0, frame(2 * i, i + 1)});
    group.push_back({1, frame(2 * i + 1, i + 1)});
    last = committer.enqueue_group(std::move(group));
  }
  committer.wait_durable(last);
  ASSERT_FALSE(images.empty());
  for (const auto& image : images) {
    bool torn = false;
    const auto a = decode_journal(image->read_journal(0), &torn);
    EXPECT_FALSE(torn);
    const auto b = decode_journal(image->read_journal(1), &torn);
    EXPECT_FALSE(torn);
    ASSERT_EQ(a.size(), b.size()) << "a flush tore an append group";
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].object.value() + 1, b[i].object.value());
    }
  }
  EXPECT_EQ(committer.stats().records, 128u);
}

TEST(GroupCommitTest, MetaCoalescesLatestImageWins) {
  auto backend = std::make_shared<MemoryBackend>(1);
  GroupCommitter committer(backend);
  (void)committer.enqueue_meta("floors", Buffer{1});
  (void)committer.enqueue_meta("floors", Buffer{2});
  const auto t = committer.enqueue_meta("floors", Buffer{3});
  committer.wait_durable(t);
  EXPECT_EQ(backend->get_meta("floors"), Buffer{3});
  // At least one write reached the backend; at most one per cycle.
  const auto stats = committer.stats();
  EXPECT_GE(stats.meta_writes, 1u);
  EXPECT_LE(stats.meta_writes, 3u);
}

TEST(GroupCommitTest, DrainCoversEverythingEnqueued) {
  auto backend = std::make_shared<MemoryBackend>(2);
  GroupCommitter committer(backend);
  GroupCommitter::Ticket last = 0;
  for (std::uint32_t i = 0; i < 32; ++i) {
    last = committer.enqueue(i % 2, frame(i, i + 1));
  }
  committer.drain();
  EXPECT_TRUE(committer.is_durable(last));
  bool torn = false;
  EXPECT_EQ(decode_journal(backend->read_journal(0), &torn).size() +
                decode_journal(backend->read_journal(1), &torn).size(),
            32u);
}

/// Delegating backend whose append path throws: the disk-full shape.
class ExplodingBackend final : public Backend {
 public:
  explicit ExplodingBackend(std::size_t shards) : inner_(shards) {}

  [[nodiscard]] std::size_t shard_count() const override {
    return inner_.shard_count();
  }
  void append_journal(std::size_t shard,
                      std::span<const std::uint8_t> bytes) override {
    inner_.append_journal(shard, bytes);
  }
  void append_journal_batch(std::vector<ShardAppend>&& appends) override {
    inner_.append_journal_batch(std::move(appends));
  }
  // Throws SYNCHRONOUSLY instead of reporting through the completion:
  // the committer must latch either way.
  void submit_append_group(std::vector<ShardAppend>&& /*appends*/,
                           AppendCompletion /*complete*/) override {
    throw std::runtime_error("disk full");
  }
  [[nodiscard]] Buffer read_journal(std::size_t shard) const override {
    return inner_.read_journal(shard);
  }
  void install_snapshot(std::size_t shard,
                        std::span<const std::uint8_t> bytes) override {
    inner_.install_snapshot(shard, bytes);
  }
  [[nodiscard]] Buffer read_snapshot(std::size_t shard) const override {
    return inner_.read_snapshot(shard);
  }
  void put_meta(std::string_view key,
                std::span<const std::uint8_t> value) override {
    inner_.put_meta(key, value);
  }
  [[nodiscard]] Buffer get_meta(std::string_view key) const override {
    return inner_.get_meta(key);
  }
  [[nodiscard]] std::vector<std::string> meta_keys() const override {
    return inner_.meta_keys();
  }
  [[nodiscard]] bool empty() const override { return inner_.empty(); }

 private:
  MemoryBackend inner_;
};

TEST(GroupCommitTest, BackendFailureLatchesAndNeverLies) {
  auto backend = std::make_shared<ExplodingBackend>(2);
  GroupCommitter committer(backend);
  const auto t1 = committer.enqueue(0, frame(1, 1));
  EXPECT_THROW(committer.wait_durable(t1), UsageError);
  EXPECT_FALSE(committer.is_durable(t1));
  // The failure latches: later enqueues are told the truth too, durability
  // is never reported for bytes the volume does not hold.
  const auto t2 = committer.enqueue(1, frame(2, 1));
  EXPECT_THROW(committer.wait_durable(t2), UsageError);
  EXPECT_THROW(committer.drain(), UsageError);
}

TEST(GroupCommitTest, NullBackendIsRejectedAndFactoryPassesNullThrough) {
  EXPECT_EQ(GroupCommitter::create(nullptr), nullptr);
  EXPECT_THROW(GroupCommitter(nullptr), UsageError);
}

TEST(GroupCommitTest, ConcurrentEnqueueStorm) {
  // The TSan target: many mutator threads enqueue framed records and block
  // on their tickets while the flusher drains -- every record must land
  // exactly once, parseable, in enqueue order per shard.
  constexpr std::size_t kThreads = 8;
  constexpr std::uint32_t kPerThread = 200;
  constexpr std::size_t kShards = 4;
  auto backend = std::make_shared<MemoryBackend>(kShards);
  GroupCommitter committer(backend);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GroupCommitter::Ticket last = 0;
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const auto object =
            static_cast<std::uint32_t>(t * kPerThread + i);
        last = committer.enqueue(t % kShards, frame(object, i + 1));
        if (i % 16 == 15) {
          committer.wait_durable(last);  // mixed waiters and free-runners
        }
      }
      committer.wait_durable(last);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  committer.drain();
  const auto stats = committer.stats();
  EXPECT_EQ(stats.records, kThreads * kPerThread);
  EXPECT_GE(stats.max_group, 1u);
  std::size_t decoded = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    bool torn = false;
    const auto records = decode_journal(backend->read_journal(s), &torn);
    EXPECT_FALSE(torn) << "shard " << s;
    // Per thread (== per shard here), lsn order is enqueue order.
    std::map<std::uint32_t, std::uint64_t> last_lsn;
    for (const auto& record : records) {
      auto& lsn = last_lsn[record.object.value() /
                           kPerThread];  // thread index
      EXPECT_GT(record.lsn, lsn);
      lsn = record.lsn;
    }
    decoded += records.size();
  }
  EXPECT_EQ(decoded, kThreads * kPerThread);
}

// --------------------------------------------------------- io_uring backend

TEST(UringBackendTest, FactoryFallsBackAndParsesKinds) {
  EXPECT_EQ(parse_backend_kind("memory"), BackendKind::memory);
  EXPECT_EQ(parse_backend_kind("file"), BackendKind::file);
  EXPECT_EQ(parse_backend_kind("uring"), BackendKind::uring);
  EXPECT_THROW((void)parse_backend_kind("floppy"), UsageError);
  const auto dir = fresh_dir("backend-factory");
  // memory ignores the directory; uring degrades to FileBackend when the
  // probe fails -- either way the caller gets a working volume.
  EXPECT_TRUE(make_backend(BackendKind::memory, dir)->empty());
  auto vol = make_backend(BackendKind::uring, dir);
  ASSERT_NE(vol, nullptr);
  vol->append_journal(0, frame(1, 1));
  EXPECT_EQ(decode_journal(vol->read_journal(0)).size(), 1u);
  EXPECT_EQ(vol->async_io_stats().async, UringFileBackend::available());
  vol.reset();
  std::filesystem::remove_all(dir);
}

TEST(UringBackendTest, SteadyStateMutatePathMakesNoBlockingIoSyscalls) {
  // THE acceptance proof for the async backend: with the ring up, neither
  // the mutator thread (enqueues) nor the flusher thread (submits SQEs)
  // ever enters write(2)/fsync(2) on the pure-mutate path -- the kernel
  // side of the ring runs the I/O.
  if (!UringFileBackend::available()) {
    GTEST_SKIP() << "io_uring unavailable (probe or AMOEBA_NO_URING)";
  }
  const auto dir = fresh_dir("uring-syscalls");
  constexpr std::uint32_t kRecords = 512;
  {
    auto backend = std::make_shared<UringFileBackend>(dir, 4);
    GroupCommitter committer(backend);
    const IoCounters before = this_thread_io_counters();
    GroupCommitter::Ticket last = 0;
    for (std::uint32_t i = 0; i < kRecords; ++i) {
      last = committer.enqueue(i % 4, frame(i, i + 1));
    }
    committer.wait_durable(last);
    const IoCounters after = this_thread_io_counters();
    EXPECT_EQ(after.writes, before.writes) << "mutator blocked in write(2)";
    EXPECT_EQ(after.fsyncs, before.fsyncs) << "mutator blocked in fsync(2)";
    const auto stats = committer.stats();
    EXPECT_EQ(stats.flusher_io_syscalls, 0u) << "flusher blocked in I/O";
    EXPECT_GT(stats.sqe_submitted, 0u);
    EXPECT_EQ(stats.cqe_completed, stats.sqe_submitted);
    EXPECT_EQ(stats.records, kRecords);
  }
  // And the bytes are really there: a plain FileBackend recovers them all.
  {
    FileBackend reopened(dir, 4);
    std::size_t decoded = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      bool torn = false;
      decoded += decode_journal(reopened.read_journal(s), &torn).size();
      EXPECT_FALSE(torn);
    }
    EXPECT_EQ(decoded, kRecords);
  }
  std::filesystem::remove_all(dir);
}

TEST(UringBackendTest, PostFlushHookFiresInLsnOrderOnlyAfterCqes) {
  // The §8.5 ack-ordering contract, observed through the committer's
  // post-flush hook (what replication ships from): while cycles sit
  // submitted-but-uncompleted NOTHING ships, and releasing them fires the
  // hook strictly in cycle (LSN) order.
  if (!UringFileBackend::available()) {
    GTEST_SKIP() << "io_uring unavailable (probe or AMOEBA_NO_URING)";
  }
  const auto dir = fresh_dir("uring-hook-order");
  {
    auto backend = std::make_shared<UringFileBackend>(dir, 2);
    backend->set_hold_submissions(true);
    GroupCommitter committer(backend);
    std::mutex mutex;
    std::vector<GroupCommitter::Ticket> shipped;
    committer.set_post_flush_hook([&](const GroupCommitter::FlushCycle& c) {
      const std::lock_guard lock(mutex);
      shipped.push_back(c.ticket);
    });
    std::vector<GroupCommitter::Ticket> tickets;
    for (std::uint32_t i = 0; i < 3; ++i) {
      tickets.push_back(committer.enqueue(0, frame(i, i + 1)));
      // One held cycle per enqueue: wait for the flusher to claim it.
      for (int spin = 0;
           spin < 2000 && committer.stats().inflight_cycles <= i; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ASSERT_EQ(committer.stats().inflight_cycles, i + 1);
    }
    {
      const std::lock_guard lock(mutex);
      EXPECT_TRUE(shipped.empty()) << "shipped before any CQE arrived";
    }
    EXPECT_FALSE(committer.is_durable(tickets.front()));
    backend->set_hold_submissions(false);
    committer.wait_durable(tickets.back());
    const std::lock_guard lock(mutex);
    EXPECT_EQ(shipped, tickets) << "ship order diverged from LSN order";
  }
  std::filesystem::remove_all(dir);
}

TEST(UringBackendTest, HeldSubmissionsDeferDurabilityUntilReleased) {
  // The submitted-but-uncompleted window, held open deliberately: a cycle
  // whose SQEs never reached the kernel must not release tickets, and
  // releasing the hold must complete everything in order.
  if (!UringFileBackend::available()) {
    GTEST_SKIP() << "io_uring unavailable (probe or AMOEBA_NO_URING)";
  }
  const auto dir = fresh_dir("uring-held");
  {
    auto backend = std::make_shared<UringFileBackend>(dir, 2);
    backend->set_hold_submissions(true);
    GroupCommitter committer(backend);
    const auto ticket = committer.enqueue(0, frame(1, 1));
    // The flusher claims and "submits" promptly; the chain stays staged.
    for (int i = 0; i < 2000 && committer.stats().inflight_cycles == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(committer.stats().inflight_cycles, 1u);
    EXPECT_FALSE(committer.is_durable(ticket));
    backend->set_hold_submissions(false);
    committer.wait_durable(ticket);
    EXPECT_TRUE(committer.is_durable(ticket));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amoeba::storage

namespace amoeba::core {
namespace {

constexpr Port kPort{0x5A5A5A5A5A5AULL};

[[nodiscard]] Durability<int> int_codec(
    std::shared_ptr<storage::Backend> backend, std::size_t compact_after = 0) {
  Durability<int> d;
  d.backend = std::move(backend);
  d.encode = [](Writer& w, const int& v) {
    w.u32(static_cast<std::uint32_t>(v));
  };
  d.decode = [](Reader& r, int& v) {
    v = static_cast<int>(r.u32());
    return r.ok();
  };
  if (compact_after != 0) {
    d.compact_after = compact_after;
  }
  return d;
}

[[nodiscard]] std::shared_ptr<const ProtectionScheme> scheme() {
  static const std::shared_ptr<const ProtectionScheme> shared = [] {
    Rng rng(17);
    return std::shared_ptr<const ProtectionScheme>(
        make_scheme(SchemeKind::one_way_xor, rng));
  }();
  return shared;
}

TEST(DurableStore, RecoversObjectsSecretsAndFreeList) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  {
    ObjectStore<int> store(scheme(), kPort, 1, 16, int_codec(backend));
    EXPECT_TRUE(store.durable());
    for (int i = 0; i < 40; ++i) {
      caps.push_back(store.create(i));
    }
    // Mutate one through the accessor hook, destroy another.
    {
      auto opened = store.open(caps[5], Rights::all());
      ASSERT_TRUE(opened.ok());
      *opened.value().value = 555;
      opened.value().mark_dirty();
    }
    ASSERT_TRUE(store.destroy(caps[7]).ok());
    const auto stats = store.durability_stats();
    EXPECT_EQ(stats.journal_records, 42u);  // 40 creates + mutate + destroy
    EXPECT_GT(stats.journal_bytes, 0u);
  }
  // "Restart": a fresh store on the same volume.
  ObjectStore<int> recovered(scheme(), kPort, 999, 16, int_codec(backend));
  const auto stats = recovered.durability_stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(stats.recovered_objects, 39u);
  EXPECT_EQ(recovered.live_count(), 39u);
  // Every pre-crash capability validates against the recovered table.
  for (int i = 0; i < 40; ++i) {
    auto opened = recovered.open(caps[static_cast<std::size_t>(i)],
                                 rights::kRead);
    if (i == 7) {
      EXPECT_FALSE(opened.ok()) << "destroyed object resurrected";
      continue;
    }
    ASSERT_TRUE(opened.ok()) << "capability " << i << " died in the crash";
    EXPECT_EQ(*opened.value().value, i == 5 ? 555 : i);
  }
  // The destroyed number is reusable -- and the stale capability for it
  // still cannot resurrect (fresh secret on reuse).
  const Capability reused = recovered.create(700);
  EXPECT_FALSE(recovered.open(caps[7], Rights::none()).ok());
  EXPECT_TRUE(recovered.open(reused, Rights::none()).ok());
}

TEST(DurableStore, RevocationSurvivesRestart) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability original;
  Capability fresh;
  {
    ObjectStore<int> store(scheme(), kPort, 2, 16, int_codec(backend));
    original = store.create(1);
    fresh = store.revoke(original).value();
  }
  ObjectStore<int> recovered(scheme(), kPort, 3, 16, int_codec(backend));
  EXPECT_FALSE(recovered.open(original, Rights::none()).ok());
  EXPECT_TRUE(recovered.open(fresh, Rights::none()).ok());
}

TEST(DurableStore, PairMutationsJournalAtomically) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 4, 16, int_codec(backend));
  const Capability a = store.create(10);
  const Capability b = store.create(20);
  const auto before = backend->append_count();
  {
    auto pair = store.open2(a, Rights::none(), b, Rights::none());
    ASSERT_TRUE(pair.ok());
    *pair.value().a.value = 11;
    *pair.value().b.value = 21;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }
  // Both mutates landed, delivered as one batch (one hook firing).
  EXPECT_EQ(backend->append_count(), before + 2);
  ObjectStore<int> recovered(scheme(), kPort, 5, 16, int_codec(backend));
  EXPECT_EQ(*recovered.open(a, Rights::none()).value().value, 11);
  EXPECT_EQ(*recovered.open(b, Rights::none()).value().value, 21);
}

TEST(DurableStore, CompactionFoldsJournalIntoSnapshot) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  {
    ObjectStore<int> store(scheme(), kPort, 6, 16,
                           int_codec(backend, /*compact_after=*/3));
    for (int i = 0; i < 64; ++i) {
      caps.push_back(store.create(i));
    }
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 64; ++i) {
        auto opened = store.open(caps[static_cast<std::size_t>(i)],
                                 Rights::all());
        *opened.value().value += 100;
        opened.value().mark_dirty();
      }
    }
    EXPECT_GT(store.durability_stats().snapshots, 0u);
  }
  ObjectStore<int> recovered(scheme(), kPort, 7, 16,
                             int_codec(backend, 3));
  ASSERT_EQ(recovered.live_count(), 64u);
  for (int i = 0; i < 64; ++i) {
    auto opened =
        recovered.open(caps[static_cast<std::size_t>(i)], Rights::none());
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened.value().value, i + 300);
  }
}

TEST(DurableStore, ExplicitCompactThenRecoverIsExact) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability cap;
  {
    ObjectStore<int> store(scheme(), kPort, 8, 16, int_codec(backend));
    cap = store.create(1);
    {
      auto opened = store.open(cap, Rights::all());
      *opened.value().value = 2;
      opened.value().mark_dirty();
    }  // accessor released (and journaled) before compaction
    store.compact();
  }
  // After compaction the journals are empty; the snapshot alone recovers.
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_TRUE(backend->read_journal(s).empty());
  }
  ObjectStore<int> recovered(scheme(), kPort, 9, 16, int_codec(backend));
  EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 2);
}

TEST(DurableStore, TornJournalTailLosesOnlyTheTornRecord) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 10, 16, int_codec(backend));
  const Capability a = store.create(1);  // lands in shard of object 0
  const Capability b = store.create(2);
  // Simulate a crash that tore b's create record: rebuild a volume with
  // b's shard journal truncated mid-frame.
  auto torn = std::make_shared<storage::MemoryBackend>(16);
  for (std::size_t s = 0; s < 16; ++s) {
    Buffer journal = backend->read_journal(s);
    if (s == (b.object.value() & 15u) && !journal.empty()) {
      journal.resize(journal.size() - 2);
    }
    if (!journal.empty()) {
      torn->append_journal(s, journal);
    }
  }
  ObjectStore<int> recovered(scheme(), kPort, 11, 16, int_codec(torn));
  EXPECT_TRUE(recovered.open(a, Rights::none()).ok());
  EXPECT_FALSE(recovered.open(b, Rights::none()).ok());
}

TEST(DurableStore, MismatchedShardCountIsRejected) {
  auto backend = std::make_shared<storage::MemoryBackend>(8);
  EXPECT_THROW(ObjectStore<int>(scheme(), kPort, 1, 16, int_codec(backend)),
               UsageError);
}

TEST(DurableStore, FileBackendRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("amoeba-durable-store-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Capability cap;
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    ObjectStore<int> store(scheme(), kPort, 12, 16, int_codec(backend));
    cap = store.create(41);
    auto opened = store.open(cap, Rights::all());
    *opened.value().value = 42;
    opened.value().mark_dirty();
  }
  {
    auto backend = std::make_shared<storage::FileBackend>(dir, 16);
    ObjectStore<int> recovered(scheme(), kPort, 13, 16, int_codec(backend));
    EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 42);
  }
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------- group-committed store

[[nodiscard]] Durability<int> committed_codec(
    const std::shared_ptr<storage::Backend>& backend,
    bool with_delta = false, std::size_t compact_after = 0) {
  Durability<int> d = int_codec(backend, compact_after);
  d.committer = storage::GroupCommitter::create(backend);
  if (with_delta) {
    // Patch format: one u32 increment (replayed exactly once per record:
    // recovery is LSN-gated, so non-idempotent patches are still safe).
    d.apply_delta = [](Reader& r, int& v) {
      v += static_cast<int>(r.u32());
      return r.ok();
    };
  }
  return d;
}

TEST(GroupCommittedStore, MutationsRecoverAfterAsyncJournaling) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  {
    ObjectStore<int> store(scheme(), kPort, 20, 16,
                           committed_codec(backend));
    for (int i = 0; i < 32; ++i) {
      caps.push_back(store.create(i));
    }
    for (int i = 0; i < 32; ++i) {
      auto opened = store.open(caps[static_cast<std::size_t>(i)],
                               Rights::all());
      ASSERT_TRUE(opened.ok());
      *opened.value().value += 1000;
      opened.value().mark_dirty();
    }  // release blocks on the group-commit ticket
  }
  ObjectStore<int> recovered(scheme(), kPort, 21, 16,
                             committed_codec(backend));
  ASSERT_EQ(recovered.live_count(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(*recovered.open(caps[static_cast<std::size_t>(i)],
                              Rights::none())
                   .value()
                   .value,
              i + 1000);
  }
}

TEST(GroupCommittedStore, PipelinedReleasesWaitOnceOnTheLastTicket) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 22, 16, committed_codec(backend));
  std::vector<Capability> caps;
  for (int i = 0; i < 64; ++i) {
    caps.push_back(store.create(i));
  }
  // The pipelined window: release_async returns the commit ticket instead
  // of blocking; tickets are one monotone sequence, so waiting on the max
  // covers the whole window.
  std::uint64_t last = 0;
  for (int i = 0; i < 64; ++i) {
    auto opened =
        store.open(caps[static_cast<std::size_t>(i)], Rights::all());
    ASSERT_TRUE(opened.ok());
    *opened.value().value = -i;
    opened.value().mark_dirty();
    last = std::max(last, opened.value().release_async());
  }
  EXPECT_GT(last, 0u);
  store.wait_durable(last);
  ObjectStore<int> recovered(scheme(), kPort, 23, 16,
                             committed_codec(backend));
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(*recovered.open(caps[static_cast<std::size_t>(i)],
                              Rights::none())
                   .value()
                   .value,
              -i);
  }
}

TEST(GroupCommittedStore, PairMutationsStayAtomicThroughTheQueue) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> store(scheme(), kPort, 24, 16, committed_codec(backend));
  const Capability a = store.create(100);
  const Capability b = store.create(200);
  {
    auto pair = store.open2(a, Rights::none(), b, Rights::none());
    ASSERT_TRUE(pair.ok());
    *pair.value().a.value -= 30;
    *pair.value().b.value += 30;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }  // one enqueue_group, one ticket, one wait
  ObjectStore<int> recovered(scheme(), kPort, 25, 16,
                             committed_codec(backend));
  EXPECT_EQ(*recovered.open(a, Rights::none()).value().value, 70);
  EXPECT_EQ(*recovered.open(b, Rights::none()).value().value, 230);
}

TEST(GroupCommittedStore, DeltaPatchesRecoverAndCompactionFoldsThem) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability cap;
  {
    ObjectStore<int> store(scheme(), kPort, 26, 16,
                           committed_codec(backend, /*with_delta=*/true));
    cap = store.create(10);
    for (int round = 0; round < 3; ++round) {
      auto opened = store.open(cap, Rights::all());
      ASSERT_TRUE(opened.ok());
      *opened.value().value += 7;
      Writer patch;
      patch.u32(7);
      opened.value().mark_dirty_delta(patch.take());
    }
  }
  // The journal carries compact delta records, not full images.
  bool saw_delta = false;
  for (std::size_t s = 0; s < 16; ++s) {
    for (const auto& record :
         storage::decode_journal(backend->read_journal(s), nullptr)) {
      saw_delta |= record.type == storage::RecordType::delta;
    }
  }
  EXPECT_TRUE(saw_delta);
  {
    ObjectStore<int> recovered(
        scheme(), kPort, 27, 16,
        committed_codec(backend, /*with_delta=*/true));
    EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 31);
    recovered.compact();  // folds the delta chain into the snapshot
  }
  ObjectStore<int> again(scheme(), kPort, 28, 16,
                         committed_codec(backend, /*with_delta=*/true));
  EXPECT_EQ(*again.open(cap, Rights::none()).value().value, 31);
}

TEST(GroupCommittedStore, FullImageSupersedesPendingDeltas) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  Capability cap;
  {
    ObjectStore<int> store(scheme(), kPort, 29, 16,
                           committed_codec(backend, /*with_delta=*/true));
    cap = store.create(1);
    auto opened = store.open(cap, Rights::all());
    ASSERT_TRUE(opened.ok());
    Writer patch;
    patch.u32(100);  // stale patch: the full image below wins
    opened.value().mark_dirty_delta(patch.take());
    *opened.value().value = 55;
    opened.value().mark_dirty();
  }
  ObjectStore<int> recovered(scheme(), kPort, 30, 16,
                             committed_codec(backend, /*with_delta=*/true));
  EXPECT_EQ(*recovered.open(cap, Rights::none()).value().value, 55);
}

TEST(GroupCommittedStore, DeltaWithoutCodecIsRejectedAtMarkTime) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  ObjectStore<int> durable_store(scheme(), kPort, 31, 16,
                                 committed_codec(backend));
  const Capability cap = durable_store.create(1);
  {
    auto opened = durable_store.open(cap, Rights::all());
    ASSERT_TRUE(opened.ok());
    Writer patch;
    patch.u32(1);
    // Durable store, no apply_delta codec: rejected synchronously (the
    // journaling itself runs in release paths that must not throw).
    EXPECT_THROW(opened.value().mark_dirty_delta(patch.take()), UsageError);
  }
  // In-memory stores accept and ignore patches, like mark_dirty.
  ObjectStore<int> in_memory(scheme(), kPort, 32, 16, {});
  const Capability mem_cap = in_memory.create(2);
  auto opened = in_memory.open(mem_cap, Rights::all());
  Writer patch;
  patch.u32(1);
  opened.value().mark_dirty_delta(patch.take());
}

TEST(GroupCommittedStore, ForeignCommitterIsRejected) {
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  auto other = std::make_shared<storage::MemoryBackend>(16);
  Durability<int> d = int_codec(backend);
  d.committer = storage::GroupCommitter::create(other);
  EXPECT_THROW(ObjectStore<int>(scheme(), kPort, 33, 16, std::move(d)),
               UsageError);
}

TEST(GroupCommittedStore, ConcurrentMutatorsStorm) {
  // The store-level TSan target: mutator threads hammer overlapping
  // objects through the full open/mark_dirty/release (and pipelined
  // release_async) paths while one committer flushes.
  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 64;
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  std::vector<Capability> caps;
  std::uint64_t mutations = 0;
  {
    ObjectStore<int> store(scheme(), kPort, 34, 16,
                           committed_codec(backend));
    for (int i = 0; i < 32; ++i) {
      caps.push_back(store.create(0));
    }
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 1);
        std::uint64_t window = 0;
        for (int i = 0; i < kRounds; ++i) {
          auto opened = store.open(caps[rng.below(32)], Rights::all());
          if (!opened.ok()) {
            continue;
          }
          *opened.value().value += 1;
          opened.value().mark_dirty();
          if (i % 2 == 0) {
            window = std::max(window, opened.value().release_async());
          }  // odd rounds: the destructor waits synchronously
        }
        store.wait_durable(window);
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    mutations = store.durability_stats().journal_records;
  }
  // Every mutation journaled exactly once: creates + thread increments.
  EXPECT_EQ(mutations, 32u + kThreads * kRounds);
  ObjectStore<int> recovered(scheme(), kPort, 35, 16,
                             committed_codec(backend));
  std::uint64_t total = 0;
  for (const auto& cap : caps) {
    auto opened = recovered.open(cap, Rights::none());
    ASSERT_TRUE(opened.ok());
    total += static_cast<std::uint64_t>(*opened.value().value);
  }
  EXPECT_EQ(total, kThreads * kRounds);
}

}  // namespace
}  // namespace amoeba::core
