// Kill-the-primary failover (docs/PROTOCOL.md §9.4).  A bank runs over a
// replicated volume (ack-one journal shipping to a backup machine); the
// primary machine is killed mid-service; the backup is promoted and an
// ordinary BankServer is constructed over the promoted volume -- with the
// same get-port and protection scheme, and NOTHING re-minted.  The
// acceptance bar:
//
//   * 100% of pre-crash capabilities validate against the promoted
//     backup (the shipped journals carry the secrets),
//   * the recovered master capability is byte-identical to the
//     pre-crash master (zero re-minting, so old money still mints),
//   * a duplicate of an in-flight pre-crash transfer is suppressed (the
//     shipped reply-cache floors survive the failover),
//   * money is conserved and the promoted bank takes new transfers.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/replication.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace amoeba::servers {
namespace {

using namespace std::chrono_literals;

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(31);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::commutative, rng));
  }();
  return shared;
}

/// Polls until the service stops executing new requests (replayed
/// duplicates are fire-and-forget; suppressed ones answer nothing).
void quiesce(const rpc::Service& service) {
  std::uint64_t last = service.requests_served();
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(5ms);
    const std::uint64_t now = service.requests_served();
    if (now == last && i > 3) {
      return;
    }
    last = now;
  }
}

class FailoverSuite : public ::testing::Test {
 protected:
  static constexpr std::int64_t kMint = 1'000'000;
  static constexpr std::int64_t kAmount = 7;
  static constexpr std::uint64_t kClient = 0xFA11;
  static constexpr int kTransfers = 30;
  static constexpr Port kBankPort{0xBA22};

  FailoverSuite()
      : primary_machine_(net_.add_machine("primary")),
        backup_machine_(net_.add_machine("backup")),
        client_machine_(net_.add_machine("client")),
        primary_volume_(std::make_shared<storage::MemoryBackend>(16)),
        backup_volume_(std::make_shared<storage::MemoryBackend>(16)) {
    replica_ = std::make_unique<rpc::ReplicaServer>(
        backup_machine_, Port(0x7B01), scheme(), 13, backup_volume_);
    replica_->start(2);
  }

  ~FailoverSuite() override {
    client_.reset();
    transport_.reset();
    if (bank_ != nullptr) {
      bank_->stop();
    }
    bank_.reset();
    replicated_.reset();
    if (replica_ != nullptr) {
      replica_->stop();
    }
  }

  /// Hand-stamped at-most-once transfer (client kClient, seq `seq`): the
  /// workload keeps its own identity so the EXACT pre-crash frames can be
  /// replayed against the promoted backup.
  [[nodiscard]] net::Message transfer_frame(std::uint64_t seq,
                                            Port reply_port) const {
    net::Message request = rpc::make_request(
        bank_->put_port(), bank_ops::kTransfer, alice_,
        {currency::kDollar, kAmount, bob_});
    request.header.flags |= net::kFlagAtMostOnce;
    request.header.client = kClient;
    request.header.seq = seq;
    request.header.reply = reply_port;
    return request;
  }

  [[nodiscard]] std::int64_t dollars(const core::Capability& account) {
    return client_->balance(account, currency::kDollar).value();
  }

  net::Network net_;
  net::Machine& primary_machine_;
  net::Machine& backup_machine_;
  net::Machine& client_machine_;
  std::shared_ptr<storage::MemoryBackend> primary_volume_;
  std::shared_ptr<storage::MemoryBackend> backup_volume_;
  std::unique_ptr<rpc::ReplicaServer> replica_;
  std::shared_ptr<storage::ReplicatedBackend> replicated_;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
  std::uint64_t seed_ = 91;
};

TEST_F(FailoverSuite, PromotedBackupServesEveryPreCrashCapability) {
  // ---- Act 1: the replicated primary serves a real workload. ----
  replicated_ = rpc::replicate_to(
      primary_volume_, storage::AckMode::ack_one, primary_machine_, 17,
      {{"backup", replica_->volume_capability()}});
  bank_ = std::make_unique<BankServer>(primary_machine_, kBankPort,
                                       scheme(), 1, replicated_);
  bank_->start(2);
  transport_ = std::make_unique<rpc::Transport>(client_machine_, seed_++);
  client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());

  alice_ = client_->create_account().value();
  bob_ = client_->create_account().value();
  std::vector<core::Capability> extras;
  for (int i = 0; i < 6; ++i) {
    extras.push_back(client_->create_account().value());
  }
  const core::Capability master = bank_->master_capability();
  ASSERT_TRUE(
      client_->mint(master, alice_, currency::kDollar, kMint).ok());

  const Port reply_get(0x4747);
  net::Receiver replies = client_machine_.listen(reply_get);
  for (int i = 1; i <= kTransfers; ++i) {
    ASSERT_TRUE(client_machine_.transmit(
        transfer_frame(static_cast<std::uint64_t>(i), reply_get),
        primary_machine_.id()));
    ASSERT_TRUE(replies.receive({}, 2'000ms).has_value()) << "transfer " << i;
  }
  // The in-flight transfer: executed on the primary, acknowledged durable
  // on the backup (ack-one), but its reply never reached the client --
  // the client will retransmit this exact frame after the failover.
  const net::Message in_flight =
      transfer_frame(static_cast<std::uint64_t>(kTransfers + 1), reply_get);
  ASSERT_TRUE(client_machine_.transmit(in_flight, primary_machine_.id()));
  ASSERT_TRUE(replies.receive({}, 2'000ms).has_value());

  const std::int64_t pre_crash_alice = dollars(alice_);
  const std::int64_t pre_crash_bob = dollars(bob_);
  EXPECT_EQ(pre_crash_bob, (kTransfers + 1) * kAmount);

  // ---- Act 2: the primary machine dies. ----
  client_.reset();
  bank_->stop();
  bank_.reset();
  replicated_.reset();  // the shipping queues die with the machine

  // ---- Act 3: promote the backup, boot a bank over its volume. ----
  const auto floor = rpc::rep_promote(*transport_, replica_->volume_capability());
  ASSERT_TRUE(floor.ok());
  EXPECT_GT(floor.value(), 0u);

  // Same get-port, same scheme, the PROMOTED volume, a DIFFERENT machine.
  // Nothing is re-minted: the shipped journals carry every secret.
  bank_ = std::make_unique<BankServer>(backup_machine_, kBankPort, scheme(),
                                       99, replica_->backend());
  bank_->start(2);
  transport_->flush_cache();  // the old primary's locate entry is stale
  client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());

  // ---- The acceptance bar. ----
  // 100% of pre-crash capabilities validate against the promoted backup.
  EXPECT_TRUE(client_->balance(alice_, currency::kDollar).ok());
  EXPECT_TRUE(client_->balance(bob_, currency::kDollar).ok());
  for (const core::Capability& extra : extras) {
    EXPECT_TRUE(client_->balance(extra, currency::kDollar).ok());
  }
  // Zero re-minting: the recovered master IS the pre-crash master.
  EXPECT_EQ(core::pack(bank_->master_capability()), core::pack(master));
  // Nothing was lost and nothing doubled: balances match the last
  // acknowledged pre-crash state exactly, and money is conserved.
  EXPECT_EQ(dollars(alice_), pre_crash_alice);
  EXPECT_EQ(dollars(bob_), pre_crash_bob);

  // The client retransmits the in-flight transfer (and, for good measure,
  // the whole pre-crash stream): every seq was claimed before the crash
  // and the floors shipped with the journals, so NOTHING re-executes.
  const auto served_before = bank_->requests_served();
  net::Message retry = in_flight;
  retry.header.dest = bank_->put_port();  // same value: the F-box is global
  ASSERT_TRUE(client_machine_.transmit(retry, backup_machine_.id()));
  for (int i = 1; i <= kTransfers; ++i) {
    net::Message dup = transfer_frame(static_cast<std::uint64_t>(i), reply_get);
    ASSERT_TRUE(client_machine_.transmit(dup, backup_machine_.id()));
  }
  quiesce(*bank_);
  EXPECT_EQ(bank_->requests_served(), served_before)
      << "a pre-crash transfer re-executed on the promoted backup";
  EXPECT_EQ(dollars(bob_), pre_crash_bob);
  EXPECT_EQ(dollars(alice_), pre_crash_alice);

  // And the promoted bank is a fully live primary: fresh mutations land.
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 100).ok());
  EXPECT_EQ(dollars(bob_), pre_crash_bob + 100);
  EXPECT_EQ(dollars(alice_) + dollars(bob_), kMint);
}

TEST_F(FailoverSuite, PromotedVolumeCanReplicateOnward) {
  // Failover is not terminal: the promoted volume becomes the primary of
  // a NEW replication pair (chain repair after losing a machine).
  replicated_ = rpc::replicate_to(
      primary_volume_, storage::AckMode::ack_one, primary_machine_, 19,
      {{"backup", replica_->volume_capability()}});
  bank_ = std::make_unique<BankServer>(primary_machine_, kBankPort,
                                       scheme(), 1, replicated_);
  bank_->start(2);
  transport_ = std::make_unique<rpc::Transport>(client_machine_, seed_++);
  client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
  alice_ = client_->create_account().value();
  bob_ = client_->create_account().value();
  ASSERT_TRUE(client_
                  ->mint(bank_->master_capability(), alice_,
                         currency::kDollar, 500)
                  .ok());
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 123).ok());

  // Kill the primary; promote.
  client_.reset();
  bank_->stop();
  bank_.reset();
  replicated_.reset();
  ASSERT_TRUE(
      rpc::rep_promote(*transport_, replica_->volume_capability()).ok());

  // A fresh backup machine joins; the promoted volume ships to it (the
  // attach-time resync rebuilds it from scratch).
  net::Machine& second_machine = net_.add_machine("backup2");
  auto second_volume = std::make_shared<storage::MemoryBackend>(16);
  rpc::ReplicaServer second(second_machine, Port(0x7B02), scheme(), 23,
                            second_volume);
  second.start(2);
  auto promoted = rpc::replicate_to(
      replica_->backend(), storage::AckMode::ack_one, backup_machine_, 29,
      {{"backup2", second.volume_capability()}});
  bank_ = std::make_unique<BankServer>(backup_machine_, kBankPort, scheme(),
                                       77, promoted);
  bank_->start(2);
  transport_->flush_cache();
  client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());

  // Old capabilities work through the re-replicated stack...
  EXPECT_EQ(dollars(bob_), 123);
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 7).ok());
  // ...and the new backup converges to the same bytes.
  for (int i = 0; i < 2000; ++i) {
    promoted->heartbeat();
    const auto stats = promoted->stats();
    bool synced = !stats.peers.empty();
    for (const auto& peer : stats.peers) {
      synced = synced && peer.queued == 0 &&
               peer.acked_lsn >= stats.shipped_lsn;
    }
    if (synced) {
      break;
    }
    std::this_thread::sleep_for(2ms);
  }
  for (std::size_t s = 0; s < second_volume->shard_count(); ++s) {
    EXPECT_EQ(replica_->backend()->read_journal(s),
              second_volume->read_journal(s))
        << "journal shard " << s;
  }
  bank_->stop();
  bank_.reset();
  promoted.reset();
  second.stop();
}

}  // namespace
}  // namespace amoeba::servers
