// Property tests for the typed operation-descriptor layer: the uniform
// std_* suite exercised generically against EVERY server, and the
// rights-enforcement matrix -- every registered op descriptor on every
// server must answer permission_denied when any declared right is masked
// off the presented capability, with no per-server hand-written cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/kernel/memory_server.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/multiversion_server.hpp"

namespace amoeba {
namespace {

/// One server under the generic microscope: its service (for the
/// descriptor registry) and a factory minting a full-rights owner
/// capability for a fresh object.  The factory is the only per-server
/// ingredient; every assertion below iterates descriptors generically.
struct ServerUnderTest {
  rpc::Service* service = nullptr;
  std::function<core::Capability()> make_object;
};

class TypedOpsSuite : public ::testing::Test {
 protected:
  TypedOpsSuite() : rng_(2026) {
    const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng_);
    auto& storage = net_.add_machine("storage");
    auto& fs_host = net_.add_machine("fileserver");
    auto& naming = net_.add_machine("naming");
    auto& money = net_.add_machine("bank");
    auto& versions = net_.add_machine("versions");
    auto& kernel_host = net_.add_machine("kernel");
    auto& client_machine = net_.add_machine("client");

    servers::BlockServer::Geometry geometry;
    geometry.block_count = 256;
    geometry.block_size = 256;
    blocks_ = std::make_unique<servers::BlockServer>(storage, Port(0xB10C),
                                                     scheme, 1, geometry);
    files_ = std::make_unique<servers::FlatFileServer>(
        fs_host, Port(0xF17E), scheme, 2, blocks_->put_port());
    dirs_ = std::make_unique<servers::DirectoryServer>(naming, Port(0xD1),
                                                       scheme, 3);
    bank_ = std::make_unique<servers::BankServer>(money, Port(0xBA7C),
                                                  scheme, 4);
    versions_ = std::make_unique<servers::MultiVersionServer>(
        versions, Port(0x3E), scheme, 5, 128);
    memory_ = std::make_unique<kernel::MemoryServer>(kernel_host, Port(0x6E),
                                                     scheme, 6, 1 << 20);
    for (rpc::Service* service :
         {static_cast<rpc::Service*>(blocks_.get()),
          static_cast<rpc::Service*>(files_.get()),
          static_cast<rpc::Service*>(dirs_.get()),
          static_cast<rpc::Service*>(bank_.get()),
          static_cast<rpc::Service*>(versions_.get()),
          static_cast<rpc::Service*>(memory_.get())}) {
      service->start();
    }
    transport_ = std::make_unique<rpc::Transport>(client_machine, 7);

    servers_ = {
        {blocks_.get(),
         [this] {
           return servers::BlockClient(*transport_, blocks_->put_port())
               .allocate()
               .value();
         }},
        {files_.get(),
         [this] {
           return servers::FlatFileClient(*transport_, files_->put_port())
               .create()
               .value();
         }},
        {dirs_.get(),
         [this] {
           return servers::DirectoryClient(*transport_, dirs_->put_port())
               .create_dir()
               .value();
         }},
        {bank_.get(),
         [this] {
           return servers::BankClient(*transport_, bank_->put_port())
               .create_account()
               .value();
         }},
        {versions_.get(),
         [this] {
           return servers::MultiVersionClient(*transport_,
                                              versions_->put_port())
               .create_file()
               .value();
         }},
        {memory_.get(),
         [this] {
           return kernel::MemoryClient(*transport_, memory_->put_port())
               .create_segment(64)
               .value();
         }},
    };
  }

  net::Network net_;
  Rng rng_;
  std::unique_ptr<servers::BlockServer> blocks_;
  std::unique_ptr<servers::FlatFileServer> files_;
  std::unique_ptr<servers::DirectoryServer> dirs_;
  std::unique_ptr<servers::BankServer> bank_;
  std::unique_ptr<servers::MultiVersionServer> versions_;
  std::unique_ptr<kernel::MemoryServer> memory_;
  std::unique_ptr<rpc::Transport> transport_;
  std::vector<ServerUnderTest> servers_;
};

// Every server registers the whole std_* suite -- identical opcodes,
// identical declared rights, one implementation.
TEST_F(TypedOpsSuite, StdSuiteRegisteredUniformly) {
  for (const auto& server : servers_) {
    const auto& ops = server.service->registered_ops();
    for (const std::uint16_t opcode : {0xF0, 0xF1, 0xF2, 0xF3, 0xF4}) {
      const auto found =
          std::find_if(ops.begin(), ops.end(), [opcode](const rpc::OpInfo& o) {
            return o.opcode == opcode;
          });
      ASSERT_NE(found, ops.end())
          << server.service->name() << " lacks std op 0x" << std::hex
          << opcode;
      EXPECT_TRUE(found->object) << found->name;
      EXPECT_EQ(found->name.substr(0, 4), "std.") << found->name;
    }
    // And the domain ops are registered through descriptors too: every
    // server exposes more than just the suite.
    EXPECT_GT(ops.size(), 5u) << server.service->name();
  }
}

// The generic std_* behavioral contract, identical on every server:
// info names the service, touch validates, restrict narrows, revoke cuts
// off outstanding capabilities instantly, destroy requires the right and
// actually removes the object.
TEST_F(TypedOpsSuite, StdSuiteBehavesUniformly) {
  for (const auto& server : servers_) {
    const std::string who = server.service->name();
    const core::Capability owner = server.make_object();

    const auto info = rpc::std_info(*transport_, owner);
    ASSERT_TRUE(info.ok()) << who << ": " << to_string(info.error());
    EXPECT_NE(info.value().find(who), std::string::npos)
        << who << " info: " << info.value();

    EXPECT_TRUE(rpc::std_touch(*transport_, owner).ok()) << who;

    // Narrow to read-only: the duplicate stays valid but loses destroy.
    const auto read_only =
        rpc::std_restrict(*transport_, owner, core::rights::kRead);
    ASSERT_TRUE(read_only.ok()) << who << ": " << to_string(read_only.error());
    EXPECT_TRUE(rpc::std_touch(*transport_, read_only.value()).ok()) << who;
    EXPECT_EQ(rpc::std_destroy(*transport_, read_only.value()).error(),
              ErrorCode::permission_denied)
        << who;
    // And it cannot revoke either (no admin bit survived the mask).
    EXPECT_EQ(rpc::std_revoke(*transport_, read_only.value()).error(),
              ErrorCode::permission_denied)
        << who;

    // Revocation rotates the secret: the narrowed duplicate dies, the
    // returned replacement lives.
    const auto fresh = rpc::std_revoke(*transport_, owner);
    ASSERT_TRUE(fresh.ok()) << who << ": " << to_string(fresh.error());
    EXPECT_FALSE(rpc::std_touch(*transport_, read_only.value()).ok()) << who;
    EXPECT_FALSE(rpc::std_touch(*transport_, owner).ok()) << who;
    EXPECT_TRUE(rpc::std_touch(*transport_, fresh.value()).ok()) << who;

    // Destroy through the uniform opcode; the object is gone afterwards.
    const auto destroyed = rpc::std_destroy(*transport_, fresh.value());
    ASSERT_TRUE(destroyed.ok()) << who << ": " << to_string(destroyed.error());
    EXPECT_FALSE(rpc::std_touch(*transport_, fresh.value()).ok()) << who;
  }
}

// The rights-enforcement matrix: iterate EVERY registered descriptor on
// EVERY server; for each declared right, a capability with exactly that
// bit masked off must be refused with permission_denied -- before any
// request parsing, so an empty body suffices for every op.
TEST_F(TypedOpsSuite, RightsMatrixDeniesEveryMaskedRight) {
  int asserted = 0;
  for (const auto& server : servers_) {
    const core::Capability owner = server.make_object();
    const Port dest = server.service->put_port();
    for (const rpc::OpInfo& op : server.service->registered_ops()) {
      if (!op.object || op.required.bits() == 0) {
        continue;  // factory ops and rights-free ops have nothing to mask
      }
      for (int bit = 0; bit < Rights::kBits; ++bit) {
        if (!op.required.has(bit)) {
          continue;
        }
        const auto masked = rpc::std_restrict(*transport_, owner,
                                              Rights::all().without(bit));
        ASSERT_TRUE(masked.ok())
            << server.service->name() << "/" << op.name << ": "
            << to_string(masked.error());
        // Raw frame, empty body: rights precede parsing, so the declared
        // check must fire regardless of the op's request shape.
        const auto reply = servers::call(*transport_, dest, op.opcode,
                                         &masked.value());
        EXPECT_EQ(reply.error(), ErrorCode::permission_denied)
            << server.service->name() << "/" << op.name << " bit " << bit
            << ": got " << to_string(reply.error());
        ++asserted;
      }
    }
  }
  // The matrix must have real coverage: six servers x (domain + std) ops.
  EXPECT_GE(asserted, 40) << "rights matrix shrank unexpectedly";
}

// Decode failures answer invalid_argument and name the op in the reply
// data -- the typed layer's diagnostic channel.
TEST_F(TypedOpsSuite, DecodeErrorsNameTheOperation) {
  servers::BankClient bank(*transport_, bank_->put_port());
  const auto account = bank.create_account().value();
  net::Message req;
  req.header.dest = bank_->put_port();
  req.header.opcode = servers::bank_ops::kTransfer.opcode;
  servers::set_header_capability(req, account);
  req.data = {1, 2, 3};  // not a capability image
  auto reply = transport_->trans(std::move(req));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.status, ErrorCode::invalid_argument);
  Reader r(reply.value().message.data);
  const std::string diagnostic = r.str();
  EXPECT_NE(diagnostic.find("bank.transfer"), std::string::npos)
      << "diagnostic: " << diagnostic;
  EXPECT_NE(diagnostic.find(to_string(ErrorCode::invalid_argument)),
            std::string::npos)
      << "diagnostic: " << diagnostic;
}

// Typed sub-requests for DIFFERENT ops ride one envelope and decode to
// their own reply shapes.
TEST_F(TypedOpsSuite, TypedBatchMixesOpsInOneFrame) {
  servers::BankClient bank(*transport_, bank_->put_port());
  const auto account = bank.create_account().value();
  ASSERT_TRUE(bank.mint(bank_->master_capability(), account,
                        servers::currency::kDollar, 42)
                  .ok());
  rpc::TypedBatch batch(*transport_, bank_->put_port());
  const auto balance_entry = batch.add(servers::bank_ops::kBalance, account,
                                       {servers::currency::kDollar});
  const auto info_entry = batch.add(rpc::kStdInfo, account);
  const auto touch_entry = batch.add(rpc::kStdTouch, account);
  const auto before = transport_->stats().transactions;
  auto replies = batch.run();
  ASSERT_TRUE(replies.ok()) << to_string(replies.error());
  EXPECT_EQ(transport_->stats().transactions - before, 1u);  // ONE round trip
  const auto balance = replies.value().get(balance_entry);
  ASSERT_TRUE(balance.ok()) << to_string(balance.error());
  EXPECT_EQ(balance.value().balance, 42);
  const auto info = replies.value().get(info_entry);
  ASSERT_TRUE(info.ok()) << to_string(info.error());
  EXPECT_NE(info.value().description.find("bank"), std::string::npos);
  EXPECT_TRUE(replies.value().get(touch_entry).ok());
}

}  // namespace
}  // namespace amoeba
