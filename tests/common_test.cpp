// Unit tests for the common substrate: strong types, Result, Rng, serial.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/common/serial.hpp"
#include "amoeba/common/types.hpp"

namespace amoeba {
namespace {

TEST(Types, PortTruncatesTo48Bits) {
  const Port p(0xFFFF'FFFF'FFFF'FFFFULL);
  EXPECT_EQ(p.value(), (1ULL << 48) - 1);
  EXPECT_EQ(Port(0).value(), 0u);
  EXPECT_TRUE(Port(0).is_null());
  EXPECT_FALSE(Port(1).is_null());
}

TEST(Types, ObjectNumberTruncatesTo24Bits) {
  EXPECT_EQ(ObjectNumber(0xFFFF'FFFFu).value(), (1u << 24) - 1);
}

TEST(Types, RightsBitOperations) {
  Rights r = Rights::none();
  EXPECT_FALSE(r.has(3));
  r = r.with(3);
  EXPECT_TRUE(r.has(3));
  EXPECT_TRUE(r.subset_of(Rights::all()));
  EXPECT_FALSE(Rights::all().subset_of(r));
  EXPECT_EQ(r.without(3), Rights::none());
  EXPECT_EQ(Rights::all().intersect(Rights(0x0F)).bits(), 0x0F);
  EXPECT_TRUE(Rights(0x0F).has_all(Rights(0x05)));
  EXPECT_FALSE(Rights(0x0F).has_all(Rights(0x10)));
}

TEST(Types, RightsSubsetIsReflexiveAndAntisymmetric) {
  for (unsigned a = 0; a < 256; a += 17) {
    EXPECT_TRUE(Rights(static_cast<std::uint8_t>(a))
                    .subset_of(Rights(static_cast<std::uint8_t>(a))));
  }
  EXPECT_TRUE(Rights(0x01).subset_of(Rights(0x03)));
  EXPECT_FALSE(Rights(0x03).subset_of(Rights(0x01)));
}

TEST(ResultTest, HoldsValueOrError) {
  const Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.error(), ErrorCode::ok);

  const Result<int> bad(ErrorCode::no_such_object);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), ErrorCode::no_such_object);
  EXPECT_THROW((void)bad.value(), UsageError);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, VoidSpecialization) {
  const Result<void> good;
  EXPECT_TRUE(good.ok());
  const Result<void> bad(ErrorCode::timeout);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), ErrorCode::timeout);
}

TEST(ResultTest, OkErrorCodeRejectedAsError) {
  EXPECT_THROW(Result<int>(ErrorCode::ok), UsageError);
}

TEST(ResultTest, RvalueValueSurvivesRangeFor) {
  // Regression: value()&& must return by value, not T&&; otherwise a
  // range-for over a temporary Result dangles in C++20.
  auto make = [] {
    return Result<std::vector<int>>(std::vector<int>{1, 2, 3});
  };
  int sum = 0;
  for (const int v : make().value()) {
    sum += v;
  }
  EXPECT_EQ(sum, 6);
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::internal); ++i) {
    EXPECT_STRNE(error_name(static_cast<ErrorCode>(i)), "unknown_error");
  }
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next() == b.next());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 1000ULL, 1ULL << 47}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_THROW(rng.below(0), UsageError);
}

TEST(RngTest, BitsMasksCorrectly) {
  Rng rng(4);
  for (int b = 1; b <= 63; ++b) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(rng.bits(b) >> b, 0u) << "width " << b;
    }
  }
  EXPECT_THROW(rng.bits(0), UsageError);
  EXPECT_THROW(rng.bits(65), UsageError);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, FillCoversAllBytes) {
  Rng rng(6);
  std::vector<std::uint8_t> buf(1000, 0);
  rng.fill(buf);
  std::set<std::uint8_t> seen(buf.begin(), buf.end());
  EXPECT_GT(seen.size(), 200u);  // all byte values roughly represented
}

TEST(Serial, RoundTripsEveryFieldType) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u48(0x123456789ABCULL);
  w.u64(0xFEDCBA9876543210ULL);
  w.port(Port(0x424242424242ULL));
  w.object(ObjectNumber(0x123456));
  w.rights(Rights(0x5A));
  w.check(CheckField(0xA5A5A5A5A5A5ULL));
  w.str("hello amoeba");
  const Buffer payload = {1, 2, 3, 4, 5};
  w.bytes(payload);

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u48(), 0x123456789ABCULL);
  EXPECT_EQ(r.u64(), 0xFEDCBA9876543210ULL);
  EXPECT_EQ(r.port(), Port(0x424242424242ULL));
  EXPECT_EQ(r.object(), ObjectNumber(0x123456));
  EXPECT_EQ(r.rights(), Rights(0x5A));
  EXPECT_EQ(r.check(), CheckField(0xA5A5A5A5A5A5ULL));
  EXPECT_EQ(r.str(), "hello amoeba");
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serial, UnderflowLatchesFailure) {
  Writer w;
  w.u16(7);
  Reader r(w.buffer());
  (void)r.u64();  // only 2 bytes available
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.u8(), 0);  // stays failed, reads return zero
}

TEST(Serial, TruncatedStringFails) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.buffer());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serial, EmptyBufferIsExhausted) {
  Reader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace amoeba
