// Tests for the §4 comparison baselines: the Eden-style kernel-mediated
// capability manager and the Donnelley-style password capabilities.
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/baseline/kernel_caps.hpp"
#include "amoeba/baseline/password_caps.hpp"
#include "amoeba/common/rng.hpp"

namespace amoeba::baseline {
namespace {

class KernelCapsSuite : public ::testing::Test {
 protected:
  KernelCapsSuite()
      : kernel_machine_(net_.add_machine("kernel")),
        client_machine_(net_.add_machine("client")) {
    manager_ = std::make_unique<CapabilityManager>(kernel_machine_,
                                                   Port(0xC4B));
    manager_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 1);
    client_ = std::make_unique<KernelMediatedClient>(*transport_,
                                                     manager_->put_port());
  }

  static core::Capability sample(std::uint32_t object) {
    return core::Capability{Port(0x5E11), ObjectNumber(object),
                            Rights::all(), CheckField(object * 31337)};
  }

  net::Network net_;
  net::Machine& kernel_machine_;
  net::Machine& client_machine_;
  std::unique_ptr<CapabilityManager> manager_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<KernelMediatedClient> client_;
};

TEST_F(KernelCapsSuite, RegisterThenVerifyReturnsCopy) {
  const auto handle = client_->register_capability(sample(1));
  ASSERT_TRUE(handle.ok());
  const auto cap = client_->verify(handle.value());
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap.value(), sample(1));
}

TEST_F(KernelCapsSuite, UnknownHandleRejected) {
  EXPECT_EQ(client_->verify(999).error(), ErrorCode::bad_capability);
}

TEST_F(KernelCapsSuite, EveryUseCostsAKernelRoundTrip) {
  const auto handle = client_->register_capability(sample(2));
  ASSERT_TRUE(handle.ok());
  const auto before = manager_->requests_served();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->verify(handle.value()).ok());
  }
  // The defining property of the kernel-mediated design: 10 uses = 10
  // manager RPCs, where Amoeba's sparse capabilities need zero.
  EXPECT_EQ(manager_->requests_served() - before, 10u);
}

TEST_F(KernelCapsSuite, RevocationScansAllCopies) {
  // Many holders register copies of capabilities for the same object.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_->register_capability(sample(7)).ok());
  }
  ASSERT_TRUE(client_->register_capability(sample(8)).ok());
  EXPECT_EQ(manager_->registered_count(), 51u);
  const auto removed = client_->revoke_object(Port(0x5E11), ObjectNumber(7));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 50u);
  EXPECT_EQ(manager_->registered_count(), 1u);  // object 8 untouched
}

// ----------------------------------------------------------- password caps

TEST(PasswordCapsTest, PasswordGrantsEverythingOrNothing) {
  PasswordCapabilityTable table(3);
  const auto cap = table.create("secret document");
  const auto opened = table.open(cap);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened.value(), "secret document");

  auto wrong = cap;
  wrong.password ^= 1;
  EXPECT_EQ(table.open(wrong).error(), ErrorCode::bad_capability);
  auto missing = cap;
  missing.object = 999;
  EXPECT_EQ(table.open(missing).error(), ErrorCode::no_such_object);
}

TEST(PasswordCapsTest, NoReadOnlyDelegationWithoutNewObject) {
  // The §4 criticism: "they do not provide a way to protect individual
  // rights bits to allow one capability to read an object and another to
  // write it."  Sharing requires cloning into a NEW object, and the clone
  // does not track the original.
  PasswordCapabilityTable table(4);
  const auto original = table.create("v1");
  const auto shared = table.clone_for_sharing(original);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(table.object_count(), 2u);  // a whole second object
  // Updating the original is invisible through the clone.
  *table.open(original).value() = "v2";
  EXPECT_EQ(*table.open(shared.value()).value(), "v1");
  // And the clone holder can WRITE "the shared copy" -- there is no
  // read-only: the password grants everything.
  *table.open(shared.value()).value() = "vandalized";
  EXPECT_EQ(*table.open(shared.value()).value(), "vandalized");
}

}  // namespace
}  // namespace amoeba::baseline
