// Randomized property tests: model-based checking of the COW page store's
// refcounting, fuzzing of the wire parsers, cross-scheme capability
// isolation, and randomized ObjectStore lifecycle against a reference
// model.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/common/serial.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/servers/page_tree.hpp"

namespace amoeba {
namespace {

// ---------------------------------------------------------- PageStore model

// Reference model: a snapshot is simply a map<page_no, byte>; the real
// PageStore must agree with it through arbitrary interleavings of write /
// retain / release / read across many live snapshots, and must free
// everything when the last reference drops.
TEST(PageStoreModel, RandomOpsMatchReferenceModel) {
  servers::PageStore store(16);
  using Model = std::map<std::uint32_t, std::uint8_t>;
  struct Snapshot {
    std::uint32_t root;
    Model model;
    int refs;
  };
  std::vector<Snapshot> live;
  live.push_back({servers::PageStore::kEmptyRoot, {}, 1});

  Rng rng(1234);
  for (int step = 0; step < 3000; ++step) {
    const std::size_t victim = rng.below(live.size());
    switch (rng.below(4)) {
      case 0: {  // COW write: derive a new snapshot
        const std::uint32_t page =
            static_cast<std::uint32_t>(rng.below(200));
        const std::uint8_t value = static_cast<std::uint8_t>(rng.bits(8));
        const auto next = store.write(live[victim].root, page,
                                      Buffer{value});
        ASSERT_TRUE(next.ok());
        Model model = live[victim].model;
        model[page] = value;
        live.push_back({next.value(), std::move(model), 1});
        break;
      }
      case 1: {  // retain
        store.retain(live[victim].root);
        live[victim].refs++;
        break;
      }
      case 2: {  // release (keep at least one snapshot alive)
        if (live.size() > 1 || live[victim].refs > 1) {
          store.release(live[victim].root);
          if (--live[victim].refs == 0) {
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
          }
        }
        break;
      }
      default: {  // read and compare with the model
        const std::uint32_t page =
            static_cast<std::uint32_t>(rng.below(200));
        const auto data = store.read(live[victim].root, page);
        ASSERT_TRUE(data.ok());
        auto it = live[victim].model.find(page);
        const std::uint8_t expected =
            it == live[victim].model.end() ? 0 : it->second;
        ASSERT_EQ(data.value()[0], expected)
            << "step " << step << " page " << page;
        break;
      }
    }
  }
  // Every model entry of every survivor must still read back correctly.
  for (const auto& snapshot : live) {
    for (const auto& [page, value] : snapshot.model) {
      EXPECT_EQ(store.read(snapshot.root, page).value()[0], value);
    }
  }
  // Drop everything: the store must free all nodes and pages.
  for (auto& snapshot : live) {
    for (int r = 0; r < snapshot.refs; ++r) {
      store.release(snapshot.root);
    }
  }
  EXPECT_EQ(store.stats().live_nodes, 0u);
  EXPECT_EQ(store.stats().live_pages, 0u);
}

// ------------------------------------------------------------- parser fuzz

TEST(ParserFuzz, RandomBytesNeverCrashReader) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    Buffer junk(rng.below(64));
    rng.fill(junk);
    Reader r(junk);
    // Interleave reads of every type; the reader must stay memory-safe
    // and simply latch failure on underflow.
    (void)r.u8();
    (void)r.str();
    (void)r.u48();
    (void)r.bytes();
    (void)r.u64();
    (void)r.port();
    if (r.ok()) {
      EXPECT_LE(r.remaining(), junk.size());
    }
  }
}

TEST(ParserFuzz, HostileLengthPrefixesRejected) {
  // A length prefix claiming more bytes than exist must not allocate or
  // read out of bounds.
  Writer w;
  w.u32(0xFFFFFFFF);
  Reader r(w.buffer());
  const Buffer result = r.bytes();
  EXPECT_TRUE(result.empty());
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------ cross-scheme isolation

TEST(CrossScheme, CapabilityFromOneSchemeRejectedByOthers) {
  // A capability minted under scheme A must not validate under scheme B
  // even with the same secret -- servers can switch schemes without old
  // capabilities surviving.
  Rng rng(5);
  std::vector<std::shared_ptr<const core::ProtectionScheme>> schemes;
  for (int k = 0; k < 4; ++k) {
    schemes.push_back(
        core::make_scheme(static_cast<core::SchemeKind>(k), rng));
  }
  for (int minter = 0; minter < 4; ++minter) {
    auto& minting_scheme = *schemes[static_cast<std::size_t>(minter)];
    const std::uint64_t secret = minting_scheme.new_secret(rng);
    const auto cap = minting_scheme.mint(Port(0xAB), ObjectNumber(1), secret,
                                         Rights(0x0F));
    // What the capability ACTUALLY grants under its own scheme (scheme 0
    // always grants everything by design).
    const Rights actual = minting_scheme.validate(cap, secret).value();
    for (int validator = 0; validator < 4; ++validator) {
      if (minter == validator) continue;
      const auto granted =
          schemes[static_cast<std::size_t>(validator)]->validate(cap, secret);
      // Cross-validation must not grant MORE than the capability's own
      // scheme does; in practice it fails outright except for degenerate
      // coincidences (e.g. a full-rights check interpreted as a direct
      // compare), which the subset bound still covers.
      if (granted.ok()) {
        EXPECT_TRUE(granted.value().subset_of(actual))
            << core::scheme_name(static_cast<core::SchemeKind>(minter))
            << " -> "
            << core::scheme_name(static_cast<core::SchemeKind>(validator));
      }
    }
  }
}

// ------------------------------------------- ObjectStore lifecycle model

TEST(ObjectStoreModel, RandomLifecycleMatchesReference) {
  Rng rng(9);
  core::ObjectStore<std::string> store(
      core::make_scheme(core::SchemeKind::one_way_xor, rng), Port(0xAB), 10);
  struct Live {
    core::Capability cap;
    std::string value;
  };
  std::vector<Live> live;
  std::vector<core::Capability> dead;  // destroyed or revoked capabilities
  int created = 0;

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.below(10);
    if (op < 3 || live.empty()) {  // create
      const std::string value = "obj" + std::to_string(created++);
      live.push_back({store.create(value), value});
    } else if (op < 6) {  // open + compare
      const auto& pick = live[rng.below(live.size())];
      auto opened = store.open(pick.cap, Rights::none());
      ASSERT_TRUE(opened.ok());
      EXPECT_EQ(*opened.value().value, pick.value);
    } else if (op < 8) {  // destroy
      const std::size_t idx = rng.below(live.size());
      ASSERT_TRUE(store.destroy(live[idx].cap).ok());
      dead.push_back(live[idx].cap);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op < 9) {  // revoke (owner cap has admin)
      const std::size_t idx = rng.below(live.size());
      auto fresh = store.revoke(live[idx].cap);
      ASSERT_TRUE(fresh.ok());
      dead.push_back(live[idx].cap);
      live[idx].cap = fresh.value();
    } else {  // probe a dead capability: must never open anything
      if (!dead.empty()) {
        const auto& stale = dead[rng.below(dead.size())];
        const auto opened = store.open(stale, Rights::none());
        // Slot reuse may have put a new object under the same number, but
        // the fresh secret means the stale check field cannot match.
        EXPECT_FALSE(opened.ok());
      }
    }
  }
  EXPECT_EQ(store.live_count(), live.size());
  // Final audit: every live capability opens its own value.
  for (const auto& entry : live) {
    EXPECT_EQ(*store.open(entry.cap, Rights::none()).value().value,
              entry.value);
  }
  // And every dead capability stays dead.
  for (const auto& stale : dead) {
    EXPECT_FALSE(store.open(stale, Rights::none()).ok());
  }
}

// -------------------------------------------------- rights algebra sweep

class RightsAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(RightsAlgebra, RestrictionChainsAreMonotone) {
  // For every scheme that protects rights: any chain of server-side
  // restrictions produces capabilities whose granted rights shrink
  // monotonically and match the requested intersection exactly.
  const auto kind = static_cast<core::SchemeKind>(GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  core::ObjectStore<int> store(core::make_scheme(kind, rng), Port(0xAB), 11);
  Rng masks(99);
  for (int trial = 0; trial < 50; ++trial) {
    core::Capability cap = store.create(0);
    Rights expected = Rights::all();
    for (int hop = 0; hop < 5; ++hop) {
      const Rights mask(static_cast<std::uint8_t>(masks.bits(8)));
      auto narrowed = store.restrict(cap, mask);
      ASSERT_TRUE(narrowed.ok());
      expected = expected.intersect(mask);
      const auto granted = store.open(narrowed.value(), Rights::none());
      ASSERT_TRUE(granted.ok());
      EXPECT_EQ(granted.value().rights, expected);
      EXPECT_TRUE(granted.value().rights.subset_of(Rights::all()));
      cap = narrowed.value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RightsProtectingSchemes, RightsAlgebra,
                         ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return core::scheme_name(
                               static_cast<core::SchemeKind>(info.param));
                         });

}  // namespace
}  // namespace amoeba
