// At-most-once RPC over real sockets: the rpc_lossy_test exactly-once
// discipline, but with the bank served by one SocketNetwork node and the
// client transport on another, every frame crossing 127.0.0.1 TCP through
// a FrameProxy rolling 20% per-frame drop.  Nothing in the transport or
// server changes: (client, seq) stamping, backoff retransmission, and the
// reply cache behave identically because the frame surface is identical.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/frame_proxy.hpp"
#include "amoeba/net/socket_network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/common.hpp"
#include "test_seed.hpp"

namespace amoeba::servers {
namespace {

using namespace std::chrono_literals;

class SocketRpcSuite : public ::testing::Test {
 protected:
  SocketRpcSuite() : rng_(test::seed_base(21)) {
    net::SocketNetwork::SocketConfig server_config;
    server_config.net.seed = test::seed_base(21) + 1;
    server_net_ = std::make_unique<net::SocketNetwork>(server_config);
    bank_machine_ = &server_net_->add_machine("bank");
    bank_ = std::make_unique<BankServer>(
        *bank_machine_, Port(0x10AD),
        core::make_scheme(core::SchemeKind::commutative, rng_), 1);
    bank_->start(2);

    proxy_ = std::make_unique<net::FrameProxy>(net::FrameProxy::Config{
        .target_host = "127.0.0.1",
        .target_port = server_net_->listen_port(),
        .seed = test::seed_base(21) + 2});

    net::SocketNetwork::SocketConfig client_config;
    client_config.net.seed = test::seed_base(21) + 3;
    client_config.net.machine_id_base = 100;
    client_config.listen = false;
    client_config.peers = {{"127.0.0.1", proxy_->listen_port()}};
    client_net_ = std::make_unique<net::SocketNetwork>(client_config);
    client_machine_ = &client_net_->add_machine("client");
    EXPECT_TRUE(client_net_->wait_connected(0, 5000ms));

    transport_ = std::make_unique<rpc::Transport>(*client_machine_,
                                                  test::seed_base(21) + 4);
    transport_->set_retransmit(5ms, 80ms);
    transport_->set_default_timeout(30'000ms);
    client_ = std::make_unique<BankClient>(*transport_, bank_->put_port());
    // Fault-free setup: the LOCATE crosses the wire here, so the port ->
    // machine cache is warm before the drop dice start rolling.
    alice_ = client_->create_account().value();
    bob_ = client_->create_account().value();
    EXPECT_TRUE(client_
                    ->mint(bank_->master_capability(), alice_,
                           currency::kDollar, 1'000'000)
                    .ok());
  }

  [[nodiscard]] std::int64_t dollars(const core::Capability& account) {
    return client_->balance(account, currency::kDollar).value();
  }

  Rng rng_;
  std::unique_ptr<net::SocketNetwork> server_net_;
  net::Machine* bank_machine_ = nullptr;
  std::unique_ptr<BankServer> bank_;
  std::unique_ptr<net::FrameProxy> proxy_;
  std::unique_ptr<net::SocketNetwork> client_net_;
  net::Machine* client_machine_ = nullptr;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BankClient> client_;
  core::Capability alice_;
  core::Capability bob_;
};

TEST_F(SocketRpcSuite, TransfersSurviveTwentyPercentDropExactlyOnce) {
  proxy_->set_faults(0.20);
  constexpr int kTransfers = 100;
  constexpr std::int64_t kAmount = 7;
  for (int i = 0; i < kTransfers; ++i) {
    ASSERT_TRUE(
        client_->transfer(alice_, bob_, currency::kDollar, kAmount).ok())
        << "transfer " << i;
  }
  proxy_->set_faults(0.0);
  // Every transfer applied exactly once across the real wire: none lost
  // to a dropped frame, none doubled by a retransmitted one.
  EXPECT_EQ(dollars(bob_), kTransfers * kAmount);
  EXPECT_EQ(dollars(alice_), 1'000'000 - kTransfers * kAmount);
  // The loss was real and the at-most-once machinery engaged.
  EXPECT_GT(proxy_->stats().dropped, 0u);
  EXPECT_GT(transport_->stats().retransmits, 0u);
  EXPECT_GT(bank_->reply_cache_stats().duplicates_suppressed, 0u);
}

TEST_F(SocketRpcSuite, TransfersRideOutConnectionLossAndDelay) {
  // Delay + a mid-run sever: the TCP connections are torn down entirely
  // and redialed, while the transport above notices nothing but latency.
  proxy_->set_faults(0.05, 2ms);
  constexpr int kTransfers = 30;
  for (int i = 0; i < kTransfers; ++i) {
    if (i == kTransfers / 2) {
      proxy_->sever();
    }
    ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 2).ok())
        << "transfer " << i;
  }
  proxy_->set_faults(0.0);
  EXPECT_EQ(dollars(bob_), kTransfers * 2);
  EXPECT_EQ(dollars(alice_), 1'000'000 - kTransfers * 2);
  EXPECT_GE(proxy_->stats().severed, 1u);
  // The client redialed at least once and kept its transaction identity:
  // no transfer executed twice despite replays over a new connection.
  EXPECT_GE(client_net_->socket_stats().connects, 2u);
}

TEST_F(SocketRpcSuite, PartitionHealsWithoutDoubleExecution) {
  // A short full partition with requests in flight: the transport's
  // retransmission spans the outage, and the reply cache absorbs every
  // replayed frame once traffic flows again.
  std::jthread healer([this] {
    std::this_thread::sleep_for(300ms);
    proxy_->set_partitioned(false);
  });
  proxy_->set_partitioned(true);
  ASSERT_TRUE(client_->transfer(alice_, bob_, currency::kDollar, 11).ok());
  EXPECT_EQ(dollars(bob_), 11);
  EXPECT_EQ(dollars(alice_), 1'000'000 - 11);
}

}  // namespace
}  // namespace amoeba::servers
