// Tests for the lock-free validate hot path: the seqlock/EBR primitives
// in amoeba/common/epoch.hpp, the zero-mutex-acquisition guarantee of
// ObjectStore::check() on repeat capabilities (proven through the
// CountedMutex instrumentation, not by inspection), and the exactness of
// revocation/destruction against concurrent lock-free readers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "amoeba/common/epoch.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace amoeba::core {
namespace {

using common::CountedMutex;
using common::EpochDomain;
using common::SeqCount;
using common::this_thread_lock_counters;

constexpr Port kPort{0x1F2F3F4F5F6FULL};

std::shared_ptr<const ProtectionScheme> test_scheme() {
  Rng rng(42);
  return make_scheme(SchemeKind::one_way_xor, rng);
}

// ------------------------------------------------------------ primitives

TEST(CountedMutexTest, CountsEveryAcquisitionOnThisThread) {
  CountedMutex mutex;
  const std::uint64_t before = this_thread_lock_counters().mutex_acquisitions;
  mutex.lock();
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
  EXPECT_EQ(this_thread_lock_counters().mutex_acquisitions, before + 2);
}

TEST(SeqCountTest, ReaderValidatesOnlyStableGenerations) {
  SeqCount seq;
  const std::uint32_t s0 = seq.read_begin();
  EXPECT_FALSE(SeqCount::busy(s0));
  EXPECT_TRUE(seq.read_ok(s0));
  {
    const SeqCount::WriteGuard guard(seq);
    const std::uint32_t mid = seq.read_begin();
    EXPECT_TRUE(SeqCount::busy(mid));   // odd while a writer is inside
    EXPECT_FALSE(seq.read_ok(mid));     // a busy generation never validates
    EXPECT_FALSE(seq.read_ok(s0));      // the old generation is gone
  }
  const std::uint32_t s1 = seq.read_begin();
  EXPECT_FALSE(SeqCount::busy(s1));
  EXPECT_EQ(s1, s0 + 2);  // one writer = two bumps
  EXPECT_TRUE(seq.read_ok(s1));
  EXPECT_FALSE(seq.read_ok(s0));  // stale began fails even when stable now
}

struct CountedOnDelete {
  explicit CountedOnDelete(std::atomic<int>* deleted) : deleted_(deleted) {}
  ~CountedOnDelete() { deleted_->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* deleted_;
};

TEST(EpochDomainTest, RetiredPointerOutlivesPinnedReader) {
  EpochDomain domain;
  std::atomic<int> deleted{0};
  auto* item = new CountedOnDelete(&deleted);

  EpochDomain::Guard guard = domain.pin();
  domain.retire(item);  // unlinked by construction: only we know of it
  EXPECT_EQ(deleted.load(), 0);
  EXPECT_GE(domain.limbo_size(), 1u);

  // A pinned reader caps the domain at one epoch advance (readers may lag
  // the global epoch by at most one), so NOTHING retired here can be
  // reclaimed while the guard lives -- garbage accumulates in limbo.
  for (int i = 0; i < 16; ++i) {
    domain.retire(new CountedOnDelete(&deleted));
  }
  EXPECT_EQ(deleted.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(domain.limbo_size(), 17u);
  guard = EpochDomain::Guard();  // unpin
  domain.synchronize();
  EXPECT_EQ(deleted.load(), 17);
  EXPECT_EQ(domain.limbo_size(), 0u);
}

TEST(EpochDomainTest, GuardsNestAndMove) {
  EpochDomain domain;
  std::atomic<int> deleted{0};
  {
    EpochDomain::Guard outer = domain.pin();
    {
      const EpochDomain::Guard inner = domain.pin();
      domain.retire(new CountedOnDelete(&deleted));
    }
    EXPECT_EQ(deleted.load(), 0);  // outer still pins the epoch
    EpochDomain::Guard moved = std::move(outer);
  }
  domain.synchronize();
  EXPECT_EQ(deleted.load(), 1);
}

// ---------------------------------------------- the zero-acquisition proof

TEST(LockFreeValidate, RepeatCheckTakesZeroMutexAcquisitions) {
  ObjectStore<int> store(test_scheme(), kPort, /*seed=*/7);
  const Capability cap = store.create(123);
  // First check goes through the locked path and seeds the cache.
  ASSERT_TRUE(store.check(cap, Rights::all()).ok());

  const common::LockCounters& counters = this_thread_lock_counters();
  const std::uint64_t locks_before = counters.mutex_acquisitions;
  const std::uint64_t falls_before = counters.seqlock_fallbacks;
  constexpr int kRepeats = 10'000;
  for (int i = 0; i < kRepeats; ++i) {
    const Result<Rights> granted = store.check(cap, Rights::all());
    ASSERT_TRUE(granted.ok());
    ASSERT_TRUE(granted.value().has_all(Rights::all()));
  }
  // THE claim of this PR: not one mutex acquisition, not one seqlock bail.
  EXPECT_EQ(counters.mutex_acquisitions, locks_before);
  EXPECT_EQ(counters.seqlock_fallbacks, falls_before);
  EXPECT_GE(store.cache_stats().hits,
            static_cast<std::uint64_t>(kRepeats));
}

TEST(LockFreeValidate, InsufficientRightsDeniedWithoutLocking) {
  ObjectStore<int> store(test_scheme(), kPort, 7);
  const Capability narrow =
      store.restrict(store.create(5), Rights(0x01)).value();
  ASSERT_TRUE(store.check(narrow, Rights(0x01)).ok());  // seed the cache

  const common::LockCounters& counters = this_thread_lock_counters();
  const std::uint64_t before = counters.mutex_acquisitions;
  // A cached VALID capability asking for rights it lacks is denied on the
  // fast path too -- the grant is proven, the subset test needs no lock.
  EXPECT_EQ(store.check(narrow, Rights(0x03)).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(counters.mutex_acquisitions, before);
}

TEST(LockFreeValidate, OpenPrefixSkipsRevalidationAfterWarmup) {
  ObjectStore<int> store(test_scheme(), kPort, 7);
  const Capability cap = store.create(9);
  { ASSERT_TRUE(store.open(cap, Rights::all()).ok()); }  // seeds the cache
  const auto before = store.cache_stats();
  for (int i = 0; i < 100; ++i) {
    auto opened = store.open(cap, Rights::all());
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened.value().value, 9);
  }
  const auto after = store.cache_stats();
  // Every repeat open validated through the fast prefix: hits grew, and
  // no miss (crypto revalidation) ever happened again.
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GE(after.hits, before.hits + 100);
}

TEST(LockFreeValidate, ForgedCheckFieldNeverHitsTheFastPath) {
  ObjectStore<int> store(test_scheme(), kPort, 7);
  const Capability cap = store.create(11);
  ASSERT_TRUE(store.check(cap, Rights::all()).ok());
  Capability forged = cap;
  forged.check = CheckField(cap.check.value() ^ 1);
  EXPECT_FALSE(store.check(forged, Rights::all()).ok());
  Capability widened = store.restrict(cap, Rights(0x01)).value();
  widened.rights = Rights::all();  // keep the narrow check field
  EXPECT_FALSE(store.check(widened, Rights::all()).ok());
}

// ------------------------------------------------- revocation exactness

TEST(LockFreeValidate, RevokeInvalidatesCachedCapabilityImmediately) {
  ObjectStore<int> store(test_scheme(), kPort, 7);
  const Capability cap = store.create(1);
  ASSERT_TRUE(store.check(cap, Rights::all()).ok());  // cached & fast now
  const Capability fresh = store.revoke(cap).value();
  // The epoch bump makes the cached proof stale: the OLD capability must
  // fail on its very next use, fast path or slow.
  EXPECT_FALSE(store.check(cap, Rights::all()).ok());
  EXPECT_TRUE(store.check(fresh, Rights::all()).ok());
}

TEST(LockFreeValidate, DestroyAndSlotReuseNeverRevalidateTheDead) {
  ObjectStore<int> store(test_scheme(), kPort, 7);
  const Capability cap = store.create(1);
  ASSERT_TRUE(store.check(cap, Rights::all()).ok());
  ASSERT_TRUE(store.destroy(cap).ok());
  EXPECT_EQ(store.check(cap, Rights::all()).error(),
            ErrorCode::no_such_object);
  // The freed slot is recycled for the next create; the old capability
  // (same object number, dead secret generation) must keep failing.
  const Capability reused = store.create(2);
  EXPECT_EQ(reused.object, cap.object);
  EXPECT_TRUE(store.check(reused, Rights::all()).ok());
  EXPECT_FALSE(store.check(cap, Rights::all()).ok());
}

// ------------------------------------------------------ concurrent storm
//
// Eight reader threads hammer the lock-free validate path while the main
// thread revokes, destroys, and recycles slots.  The invariant under
// test: once a revocation/destruction HAS RETURNED (published through an
// acquire/release flag), no reader that starts a validate afterwards can
// see the stale capability succeed.  Run under TSan this also checks the
// seqlock/EBR fences: every load in validate_fast must be properly
// ordered against the WriteGuard stores.

TEST(LockFreeValidate, ConcurrentValidateStormSurvivesRevocation) {
  ObjectStore<int> store(test_scheme(), kPort, 7, /*shards=*/4);
  const Capability doomed = store.create(1);
  const Capability stable = store.create(2);
  ASSERT_TRUE(store.check(doomed, Rights::all()).ok());
  ASSERT_TRUE(store.check(stable, Rights::all()).ok());

  std::atomic<bool> revoked{false};
  std::atomic<bool> destroy_begun{false};
  std::atomic<bool> destroy_done{false};
  std::atomic<bool> stop{false};
  Capability fresh;  // outlives the readers (declared before the jthreads)
  std::atomic<Capability*> replacement{nullptr};

  constexpr int kThreads = 8;
  std::vector<std::jthread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Order matters: sample the flag BEFORE validating, so a true
        // flag proves the revocation completed before this validate.
        const bool was_revoked = revoked.load(std::memory_order_acquire);
        const Result<Rights> old_cap = store.check(doomed, Rights::all());
        if (was_revoked) {
          EXPECT_FALSE(old_cap.ok());
        }
        if (Capability* cap = replacement.load(std::memory_order_acquire)) {
          const bool done_before =
              destroy_done.load(std::memory_order_acquire);
          const Result<Rights> new_cap = store.check(*cap, Rights::all());
          if (done_before) {
            // The destroy completed before this validate began: the dead
            // capability must not validate, fast path or slow.
            EXPECT_FALSE(new_cap.ok());
          } else if (!destroy_begun.load(std::memory_order_acquire)) {
            // The validate finished without ever observing destroy_begun,
            // and observing the destroy's slot mutation (through the
            // seqlock/mutex sync edges) would have made the earlier
            // begun-store visible too -- so the validate saw a live slot.
            EXPECT_TRUE(new_cap.ok());
          }
        }
        // Background noise: a capability that stays valid throughout, and
        // slot churn stressing slot_grow against the atomic probes.
        EXPECT_TRUE(store.check(stable, Rights::all()).ok());
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fresh = store.revoke(doomed).value();
  replacement.store(&fresh, std::memory_order_release);
  revoked.store(true, std::memory_order_release);

  // Slot churn while readers run: create/destroy cycles reuse free-list
  // slots and extend the high-water mark across chunk boundaries.
  for (int i = 0; i < 200; ++i) {
    const Capability churn = store.create(i);
    ASSERT_TRUE(store.destroy(churn).ok());
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  destroy_begun.store(true, std::memory_order_release);
  ASSERT_TRUE(store.destroy(fresh).ok());
  destroy_done.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true, std::memory_order_release);
}

}  // namespace
}  // namespace amoeba::core
