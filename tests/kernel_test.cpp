// Tests for the memory server (§3.1): segments, process construction from
// segment capabilities, lifecycle, remote child creation, and the
// electronic-disk pattern.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/kernel/memory_server.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::kernel {
namespace {

class MemorySuite : public ::testing::Test {
 protected:
  MemorySuite()
      : machine_(net_.add_machine("host")),
        client_machine_(net_.add_machine("parent")),
        rng_(41) {
    server_ = std::make_unique<MemoryServer>(
        machine_, Port(0x3E3), core::make_scheme(core::SchemeKind::encrypted, rng_),
        1, /*memory_limit=*/1 << 16);
    server_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 2);
    client_ = std::make_unique<MemoryClient>(*transport_,
                                             server_->put_port());
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<MemoryServer> server_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<MemoryClient> client_;
};

TEST_F(MemorySuite, SegmentCreateWriteRead) {
  const auto segment = client_->create_segment(256);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(client_->segment_size(segment.value()).value(), 256u);
  const Buffer code = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(client_->write(segment.value(), 16, code).ok());
  EXPECT_EQ(client_->read(segment.value(), 16, 4).value(), code);
  EXPECT_EQ(client_->read(segment.value(), 0, 4).value(), Buffer(4, 0));
}

TEST_F(MemorySuite, SegmentBoundsEnforced) {
  const auto segment = client_->create_segment(32);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(client_->write(segment.value(), 30, Buffer(4)).error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(client_->read(segment.value(), 33, 1).error(),
            ErrorCode::invalid_argument);
  // Read at the boundary truncates cleanly.
  EXPECT_EQ(client_->read(segment.value(), 30, 10).value().size(), 2u);
}

TEST_F(MemorySuite, MemoryLimitEnforcedAndReclaimed) {
  const auto big = client_->create_segment(1 << 15);
  ASSERT_TRUE(big.ok());
  const auto second = client_->create_segment(1 << 15);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(client_->create_segment(1).error(), ErrorCode::no_space);
  ASSERT_TRUE(client_->delete_segment(big.value()).ok());
  EXPECT_TRUE(client_->create_segment(1).ok());
  EXPECT_EQ(server_->memory_in_use(), (1u << 15) + 1u);
}

TEST_F(MemorySuite, MakeProcessFromSegments) {
  // "The parent process will normally repeat this cycle, creating and
  // loading segments ... for example, text, data, and stack segments."
  std::array<core::Capability, 3> segments;
  for (auto& cap : segments) {
    auto created = client_->create_segment(128);
    ASSERT_TRUE(created.ok());
    cap = created.value();
  }
  ASSERT_TRUE(client_->write(segments[0], 0, Buffer{'t', 'e', 'x', 't'}).ok());
  const auto process = client_->make_process(segments);
  ASSERT_TRUE(process.ok());
  const auto info = client_->process_info(process.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, ProcessState::constructed);
  EXPECT_EQ(info.value().segment_count, 3u);
}

TEST_F(MemorySuite, ProcessLifecycle) {
  const auto segment = client_->create_segment(64);
  const std::array<core::Capability, 1> segs = {segment.value()};
  const auto process = client_->make_process(segs);
  ASSERT_TRUE(process.ok());
  ASSERT_TRUE(client_->start(process.value()).ok());
  EXPECT_EQ(client_->process_info(process.value()).value().state,
            ProcessState::running);
  ASSERT_TRUE(client_->stop(process.value()).ok());
  EXPECT_EQ(client_->process_info(process.value()).value().state,
            ProcessState::stopped);
  ASSERT_TRUE(client_->delete_process(process.value()).ok());
  EXPECT_EQ(client_->process_info(process.value()).error(),
            ErrorCode::no_such_object);
}

TEST_F(MemorySuite, MakeProcessRejectsForeignOrForgedSegments) {
  const auto segment = client_->create_segment(64);
  core::Capability forged = segment.value();
  forged.check = CheckField(forged.check.value() ^ 2);
  const std::array<core::Capability, 1> segs = {forged};
  EXPECT_EQ(client_->make_process(segs).error(), ErrorCode::bad_capability);
}

TEST_F(MemorySuite, ProcessOpsRejectSegmentCaps) {
  const auto segment = client_->create_segment(64);
  EXPECT_EQ(client_->start(segment.value()).error(),
            ErrorCode::invalid_argument);
  const std::array<core::Capability, 1> segs = {segment.value()};
  const auto process = client_->make_process(segs);
  EXPECT_EQ(client_->read(process.value(), 0, 1).error(),
            ErrorCode::invalid_argument);
}

TEST_F(MemorySuite, RemoteChildCreation) {
  // "By directing the CREATE SEGMENT requests to a memory server on a
  // remote machine, the parent can create the child wherever it wants to."
  net::Machine& remote = net_.add_machine("remote-host");
  Rng rng(43);
  MemoryServer remote_server(remote, Port(0x3E4),
                             core::make_scheme(core::SchemeKind::encrypted, rng),
                             9, 1 << 16);
  remote_server.start();
  MemoryClient remote_client(*transport_, remote_server.put_port());

  const auto text = remote_client.create_segment(128);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(remote_client.write(text.value(), 0, Buffer{'c', 'o', 'd', 'e'})
                  .ok());
  const std::array<core::Capability, 1> segs = {text.value()};
  const auto child = remote_client.make_process(segs);
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(remote_client.start(child.value()).ok());
  EXPECT_EQ(remote_client.process_info(child.value()).value().state,
            ProcessState::running);
  // Segment caps from one memory server are meaningless at another, even
  // when the object numbers collide (the local secret differs).
  ASSERT_TRUE(client_->create_segment(16).ok());  // occupy local object 0
  const auto foreign = client_->make_process(segs);
  ASSERT_FALSE(foreign.ok());
  EXPECT_TRUE(foreign.error() == ErrorCode::bad_capability ||
              foreign.error() == ErrorCode::no_such_object);
}

TEST_F(MemorySuite, ElectronicDisk) {
  // "An electronic disk of the required size is created using CREATE
  // SEGMENT, and then can be read and written, either by local or remote
  // processes using READ and WRITE."
  const auto disk = client_->create_segment(4096);
  ASSERT_TRUE(disk.ok());
  // A second "process" on another machine uses the same capability.
  rpc::Transport other_transport(net_.add_machine("other"), 8);
  MemoryClient other(other_transport, server_->put_port());
  ASSERT_TRUE(other.write(disk.value(), 1000, Buffer{42}).ok());
  EXPECT_EQ(client_->read(disk.value(), 1000, 1).value(), Buffer{42});
}

TEST_F(MemorySuite, OverflowingOffsetsAndSizesRejected) {
  // Client-controlled 64-bit parameters must not wrap the bounds checks:
  // a write at offset 2^64-8 or a segment of size 2^64-1 is an error
  // reply, not memory corruption or a dead server process.
  const auto segment = client_->create_segment(64);
  ASSERT_TRUE(segment.ok());
  const Buffer data(16, 0xAB);
  EXPECT_EQ(client_->write(segment.value(),
                           ~std::uint64_t{0} - 8, data).error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(client_->create_segment(~std::uint64_t{0}).error(),
            ErrorCode::no_space);
  // The server survived both: normal traffic still works and the budget
  // was not inflated by the rejected creation.
  EXPECT_TRUE(client_->write(segment.value(), 0, data).ok());
  EXPECT_EQ(server_->memory_in_use(), 64u);
}

TEST_F(MemorySuite, ReadOnlySegmentDelegation) {
  const auto segment = client_->create_segment(64);
  ASSERT_TRUE(client_->write(segment.value(), 0, Buffer{7}).ok());
  const auto read_only = servers::restrict_capability(
      *transport_, segment.value(), core::rights::kRead);
  ASSERT_TRUE(read_only.ok());
  EXPECT_TRUE(client_->read(read_only.value(), 0, 1).ok());
  EXPECT_EQ(client_->write(read_only.value(), 0, Buffer{8}).error(),
            ErrorCode::permission_denied);
}

}  // namespace
}  // namespace amoeba::kernel
