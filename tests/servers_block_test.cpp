// Tests for the simulated disk and the block server (§3.2).
#include <gtest/gtest.h>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/disk.hpp"

namespace amoeba::servers {
namespace {

// ---------------------------------------------------------------- SimDisk

TEST(SimDiskTest, AllocateWriteReadFree) {
  SimDisk disk(8, 64);
  const auto block = disk.allocate();
  ASSERT_TRUE(block.ok());
  const Buffer data = {1, 2, 3};
  ASSERT_TRUE(disk.write(block.value(), data).ok());
  const auto read = disk.read(block.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 64u);  // whole block, zero-padded
  EXPECT_EQ(read.value()[0], 1);
  EXPECT_EQ(read.value()[2], 3);
  EXPECT_EQ(read.value()[3], 0);
  ASSERT_TRUE(disk.free_block(block.value()).ok());
  EXPECT_EQ(disk.free_count(), 8u);
}

TEST(SimDiskTest, ExhaustionAndRecovery) {
  SimDisk disk(2, 16);
  const auto a = disk.allocate();
  const auto b = disk.allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(disk.allocate().error(), ErrorCode::no_space);
  ASSERT_TRUE(disk.free_block(a.value()).ok());
  EXPECT_TRUE(disk.allocate().ok());
}

TEST(SimDiskTest, FreedBlockRejectsAccess) {
  SimDisk disk(4, 16);
  const auto block = disk.allocate();
  ASSERT_TRUE(disk.free_block(block.value()).ok());
  EXPECT_EQ(disk.read(block.value()).error(), ErrorCode::no_such_object);
  EXPECT_EQ(disk.write(block.value(), Buffer{1}).error(),
            ErrorCode::no_such_object);
  EXPECT_EQ(disk.free_block(block.value()).error(),
            ErrorCode::no_such_object);
}

TEST(SimDiskTest, ReallocatedBlockIsZeroed) {
  SimDisk disk(1, 16);
  const auto a = disk.allocate();
  ASSERT_TRUE(disk.write(a.value(), Buffer{0xFF, 0xFF}).ok());
  ASSERT_TRUE(disk.free_block(a.value()).ok());
  const auto b = disk.allocate();
  const auto read = disk.read(b.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value()[0], 0);
}

TEST(SimDiskTest, OversizedWriteRejected) {
  SimDisk disk(1, 4);
  const auto block = disk.allocate();
  EXPECT_EQ(disk.write(block.value(), Buffer{1, 2, 3, 4, 5}).error(),
            ErrorCode::invalid_argument);
}

TEST(SimDiskTest, WriteOnceModeEnforced) {
  SimDisk disk(2, 16, /*write_once=*/true);
  const auto block = disk.allocate();
  ASSERT_TRUE(disk.write(block.value(), Buffer{1}).ok());
  EXPECT_EQ(disk.write(block.value(), Buffer{2}).error(),
            ErrorCode::immutable);
  // Free + realloc resets the write-once latch.
  ASSERT_TRUE(disk.free_block(block.value()).ok());
  const auto again = disk.allocate();
  EXPECT_TRUE(disk.write(again.value(), Buffer{3}).ok());
}

TEST(SimDiskTest, StatsTrackOperations) {
  SimDisk disk(4, 16);
  const auto block = disk.allocate();
  (void)disk.write(block.value(), Buffer{1});
  (void)disk.read(block.value());
  (void)disk.read(block.value());
  EXPECT_EQ(disk.stats().allocations, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 2u);
}

TEST(SimDiskTest, ZeroGeometryRejected) {
  EXPECT_THROW(SimDisk(0, 16), UsageError);
  EXPECT_THROW(SimDisk(16, 0), UsageError);
}

// ------------------------------------------------------------ BlockServer

class BlockServerSuite : public ::testing::TestWithParam<core::SchemeKind> {
 protected:
  BlockServerSuite()
      : machine_(net_.add_machine("blocks")),
        client_machine_(net_.add_machine("client")),
        rng_(static_cast<std::uint64_t>(GetParam()) + 1) {
    BlockServer::Geometry geometry;
    geometry.block_count = 16;
    geometry.block_size = 128;
    server_ = std::make_unique<BlockServer>(
        machine_, Port(0xB10C), core::make_scheme(GetParam(), rng_), 7,
        geometry);
    server_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 3);
    client_ = std::make_unique<BlockClient>(*transport_, server_->put_port());
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<BlockServer> server_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<BlockClient> client_;
};

TEST_P(BlockServerSuite, AllocateWriteReadFreeOverRpc) {
  const auto cap = client_->allocate();
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap.value().server_port, server_->put_port());
  const Buffer data = {'d', 'a', 't', 'a'};
  ASSERT_TRUE(client_->write(cap.value(), data).ok());
  const auto read = client_->read(cap.value());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 128u);
  EXPECT_EQ(read.value()[0], 'd');
  ASSERT_TRUE(client_->free_block(cap.value()).ok());
  EXPECT_EQ(client_->read(cap.value()).error(), ErrorCode::no_such_object);
}

TEST_P(BlockServerSuite, InfoReportsGeometry) {
  const auto info = client_->info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().block_count, 16u);
  EXPECT_EQ(info.value().block_size, 128u);
  EXPECT_EQ(info.value().free_blocks, 16u);
  ASSERT_TRUE(client_->allocate().ok());
  EXPECT_EQ(client_->info().value().free_blocks, 15u);
}

TEST_P(BlockServerSuite, ForgedCapabilityRejected) {
  const auto cap = client_->allocate();
  ASSERT_TRUE(cap.ok());
  core::Capability forged = cap.value();
  forged.check = CheckField(forged.check.value() ^ 0x40);
  EXPECT_EQ(client_->read(forged).error(), ErrorCode::bad_capability);
}

TEST_P(BlockServerSuite, RestrictedCapabilityHonored) {
  if (GetParam() == core::SchemeKind::simple) {
    GTEST_SKIP() << "scheme 0 cannot narrow rights";
  }
  const auto cap = client_->allocate();
  ASSERT_TRUE(cap.ok());
  const auto read_only =
      restrict_capability(*transport_, cap.value(), core::rights::kRead);
  ASSERT_TRUE(read_only.ok());
  EXPECT_TRUE(client_->read(read_only.value()).ok());
  EXPECT_EQ(client_->write(read_only.value(), Buffer{1}).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(client_->free_block(read_only.value()).error(),
            ErrorCode::permission_denied);
}

TEST_P(BlockServerSuite, RevokedCapabilityDies) {
  const auto cap = client_->allocate();
  ASSERT_TRUE(cap.ok());
  const auto fresh = revoke_capability(*transport_, cap.value());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(client_->read(cap.value()).error(), ErrorCode::bad_capability);
  EXPECT_TRUE(client_->read(fresh.value()).ok());
}

TEST_P(BlockServerSuite, ServerExhaustionSurfacesNoSpace) {
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client_->allocate().ok());
  }
  EXPECT_EQ(client_->allocate().error(), ErrorCode::no_space);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BlockServerSuite,
                         ::testing::Values(core::SchemeKind::simple,
                                           core::SchemeKind::encrypted,
                                           core::SchemeKind::one_way_xor,
                                           core::SchemeKind::commutative),
                         [](const auto& info) {
                           return core::scheme_name(info.param);
                         });

}  // namespace
}  // namespace amoeba::servers
