// Tests for the persistent page tree and the multiversion file server
// (§3.5): copy-on-write sharing, atomic commit, optimistic concurrency
// conflicts, and immutability of committed versions.
#include <gtest/gtest.h>

#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/servers/multiversion_server.hpp"
#include "amoeba/servers/page_tree.hpp"

namespace amoeba::servers {
namespace {

// --------------------------------------------------------------- PageStore

TEST(PageStoreTest, EmptyTreeReadsZeros) {
  PageStore store(32);
  const auto page = store.read(PageStore::kEmptyRoot, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value(), Buffer(32, 0));
}

TEST(PageStoreTest, WriteThenRead) {
  PageStore store(32);
  const auto root = store.write(PageStore::kEmptyRoot, 5, Buffer{1, 2, 3});
  ASSERT_TRUE(root.ok());
  const auto page = store.read(root.value(), 5);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value()[0], 1);
  EXPECT_EQ(page.value()[2], 3);
  EXPECT_EQ(page.value()[3], 0);  // zero padded
  // Other pages in the same snapshot still read zero.
  EXPECT_EQ(store.read(root.value(), 6).value(), Buffer(32, 0));
}

TEST(PageStoreTest, SnapshotsAreIndependent) {
  PageStore store(16);
  const auto v1 = store.write(PageStore::kEmptyRoot, 0, Buffer{'a'});
  ASSERT_TRUE(v1.ok());
  const auto v2 = store.write(v1.value(), 0, Buffer{'b'});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(store.read(v1.value(), 0).value()[0], 'a');
  EXPECT_EQ(store.read(v2.value(), 0).value()[0], 'b');
}

TEST(PageStoreTest, CowCopiesOnlyThePath) {
  PageStore store(16);
  // Build a snapshot with pages spread across subtrees.
  std::uint32_t root = PageStore::kEmptyRoot;
  for (std::uint32_t page = 0; page < 64; ++page) {
    const auto next = store.write(root, page * 16, Buffer{1});
    ASSERT_TRUE(next.ok());
    store.release(root);
    root = next.value();
  }
  const auto nodes_before = store.stats().nodes_copied;
  const auto update = store.write(root, 0, Buffer{2});
  ASSERT_TRUE(update.ok());
  // One write copies exactly kDepth nodes -- O(depth), not O(file size).
  EXPECT_EQ(store.stats().nodes_copied - nodes_before,
            static_cast<std::uint64_t>(PageStore::kDepth));
}

TEST(PageStoreTest, ReleaseFreesUnsharedSubtrees) {
  PageStore store(16);
  const auto v1 = store.write(PageStore::kEmptyRoot, 0, Buffer{'a'});
  ASSERT_TRUE(v1.ok());
  const auto v2 = store.write(v1.value(), 1, Buffer{'b'});
  ASSERT_TRUE(v2.ok());
  const auto live_with_both = store.stats().live_pages;
  EXPECT_EQ(live_with_both, 2u);  // 'a' page (shared) + 'b' page
  store.release(v1.value());
  // Page 'a' survives: v2 still references it through shared structure.
  EXPECT_EQ(store.read(v2.value(), 0).value()[0], 'a');
  store.release(v2.value());
  EXPECT_EQ(store.stats().live_pages, 0u);
  EXPECT_EQ(store.stats().live_nodes, 0u);
}

TEST(PageStoreTest, RetainKeepsSnapshotAlive) {
  PageStore store(16);
  const auto v1 = store.write(PageStore::kEmptyRoot, 0, Buffer{'a'});
  ASSERT_TRUE(v1.ok());
  store.retain(v1.value());
  store.release(v1.value());
  EXPECT_EQ(store.read(v1.value(), 0).value()[0], 'a');  // still alive
  store.release(v1.value());
  EXPECT_EQ(store.stats().live_pages, 0u);
}

TEST(PageStoreTest, BoundsChecked) {
  PageStore store(16);
  EXPECT_EQ(store.write(PageStore::kEmptyRoot, PageStore::kMaxPages,
                        Buffer{1})
                .error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(store.read(PageStore::kEmptyRoot, PageStore::kMaxPages).error(),
            ErrorCode::invalid_argument);
  EXPECT_EQ(store.write(PageStore::kEmptyRoot, 0, Buffer(17)).error(),
            ErrorCode::invalid_argument);
  EXPECT_THROW(PageStore(0), UsageError);
}

TEST(PageStoreTest, HighestPageNumberWorks) {
  PageStore store(16);
  const auto root =
      store.write(PageStore::kEmptyRoot, PageStore::kMaxPages - 1,
                  Buffer{0x7F});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(store.read(root.value(), PageStore::kMaxPages - 1).value()[0],
            0x7F);
}

// ------------------------------------------------------ MultiVersionServer

class MultiVersionSuite : public ::testing::Test {
 protected:
  MultiVersionSuite()
      : machine_(net_.add_machine("mvserver")),
        client_machine_(net_.add_machine("client")),
        rng_(21) {
    server_ = std::make_unique<MultiVersionServer>(
        machine_, Port(0x3171),
        core::make_scheme(core::SchemeKind::commutative, rng_), 1,
        /*page_size=*/64);
    server_->start();
    transport_ = std::make_unique<rpc::Transport>(client_machine_, 2);
    client_ = std::make_unique<MultiVersionClient>(*transport_,
                                                   server_->put_port());
  }

  net::Network net_;
  net::Machine& machine_;
  net::Machine& client_machine_;
  Rng rng_;
  std::unique_ptr<MultiVersionServer> server_;
  std::unique_ptr<rpc::Transport> transport_;
  std::unique_ptr<MultiVersionClient> client_;
};

TEST_F(MultiVersionSuite, CreateForkWriteCommitRead) {
  const auto file = client_->create_file();
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(client_->history(file.value()).value(), 1u);  // empty v0

  const auto draft = client_->new_version(file.value());
  ASSERT_TRUE(draft.ok());
  ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{'v', '1'}).ok());
  const auto committed = client_->commit(draft.value());
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), 1u);
  EXPECT_EQ(client_->history(file.value()).value(), 2u);
  EXPECT_EQ(client_->read_page(file.value(), 0).value()[0], 'v');
}

TEST_F(MultiVersionSuite, OldVersionsRemainReadable) {
  const auto file = client_->create_file();
  for (int v = 1; v <= 3; ++v) {
    const auto draft = client_->new_version(file.value());
    ASSERT_TRUE(draft.ok());
    ASSERT_TRUE(client_
                    ->write_page(draft.value(), 0,
                                 Buffer{static_cast<std::uint8_t>('0' + v)})
                    .ok());
    ASSERT_TRUE(client_->commit(draft.value()).ok());
  }
  // "A file is thus a sequence of versions."
  EXPECT_EQ(client_->read_page(file.value(), 0, 0).value()[0], 0);    // v0
  EXPECT_EQ(client_->read_page(file.value(), 0, 1).value()[0], '1');
  EXPECT_EQ(client_->read_page(file.value(), 0, 2).value()[0], '2');
  EXPECT_EQ(client_->read_page(file.value(), 0, 3).value()[0], '3');
  EXPECT_EQ(client_->read_page(file.value(), 0).value()[0], '3');     // head
  EXPECT_EQ(client_->read_page(file.value(), 0, 9).error(),
            ErrorCode::not_found);
}

TEST_F(MultiVersionSuite, DraftSeesBaseContentUntilOverwritten) {
  const auto file = client_->create_file();
  auto draft = client_->new_version(file.value());
  ASSERT_TRUE(client_->write_page(draft.value(), 3, Buffer{'x'}).ok());
  ASSERT_TRUE(client_->commit(draft.value()).ok());

  draft = client_->new_version(file.value());
  // "The new version acts like it is a page-by-page copy of the original."
  EXPECT_EQ(client_->read_page(draft.value(), 3).value()[0], 'x');
  ASSERT_TRUE(client_->write_page(draft.value(), 3, Buffer{'y'}).ok());
  EXPECT_EQ(client_->read_page(draft.value(), 3).value()[0], 'y');
  // The committed head is untouched until commit.
  EXPECT_EQ(client_->read_page(file.value(), 3).value()[0], 'x');
}

TEST_F(MultiVersionSuite, CommittedVersionsAreImmutable) {
  const auto file = client_->create_file();
  EXPECT_EQ(client_->write_page(file.value(), 0, Buffer{'x'}).error(),
            ErrorCode::immutable);
}

TEST_F(MultiVersionSuite, OptimisticConcurrencyConflict) {
  const auto file = client_->create_file();
  const auto draft_a = client_->new_version(file.value());
  const auto draft_b = client_->new_version(file.value());
  ASSERT_TRUE(client_->write_page(draft_a.value(), 0, Buffer{'a'}).ok());
  ASSERT_TRUE(client_->write_page(draft_b.value(), 0, Buffer{'b'}).ok());
  ASSERT_TRUE(client_->commit(draft_a.value()).ok());
  // The slower committer loses.
  EXPECT_EQ(client_->commit(draft_b.value()).error(), ErrorCode::conflict);
  EXPECT_EQ(client_->read_page(file.value(), 0).value()[0], 'a');
  // The losing draft can still be aborted cleanly.
  EXPECT_TRUE(client_->abort(draft_b.value()).ok());
}

TEST_F(MultiVersionSuite, AbortDiscardsDraft) {
  const auto file = client_->create_file();
  const auto draft = client_->new_version(file.value());
  ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{'z'}).ok());
  ASSERT_TRUE(client_->abort(draft.value()).ok());
  EXPECT_EQ(client_->history(file.value()).value(), 1u);
  // The draft object is gone; its capability is dead (dead slot or, after
  // reuse, a check-field mismatch).
  const auto dead = client_->read_page(draft.value(), 0);
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.error() == ErrorCode::no_such_object ||
              dead.error() == ErrorCode::bad_capability);
}

TEST_F(MultiVersionSuite, CommitAfterFileDestroyedFails) {
  const auto file = client_->create_file();
  const auto draft = client_->new_version(file.value());
  ASSERT_TRUE(client_->destroy(file.value()).ok());
  EXPECT_EQ(client_->commit(draft.value()).error(), ErrorCode::no_such_object);
}

TEST_F(MultiVersionSuite, StaleDraftCannotCommitIntoReusedFileSlot) {
  // Destroying a file returns its object number to the free list; a new
  // file can reuse it.  A draft forked from the dead file must not be
  // able to inject its pages into the unrelated new file: commit
  // revalidates the stored file capability, which the reused slot's
  // fresh secret rejects.
  const auto doomed = client_->create_file();
  const auto draft = client_->new_version(doomed.value());
  ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{'!'}).ok());
  ASSERT_TRUE(client_->destroy(doomed.value()).ok());
  const auto reused = client_->create_file();
  ASSERT_EQ(reused.value().object, doomed.value().object);  // number reused
  EXPECT_EQ(client_->commit(draft.value()).error(),
            ErrorCode::no_such_object);
  EXPECT_EQ(client_->history(reused.value()).value(), 1u);  // untouched
}

TEST_F(MultiVersionSuite, CommitNeedsTheDestroyRight) {
  // Committing consumes the draft object, so a draft capability narrowed
  // below kDestroy cannot commit -- otherwise the published root and the
  // surviving draft would each own the same page-tree reference.
  const auto file = client_->create_file();
  const auto draft = client_->new_version(file.value());
  ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{'x'}).ok());
  const auto weak = servers::restrict_capability(
      *transport_, draft.value(),
      core::rights::kRead.with(core::rights::kWriteBit));
  ASSERT_TRUE(weak.ok());
  EXPECT_EQ(client_->commit(weak.value()).error(),
            ErrorCode::permission_denied);
  EXPECT_EQ(client_->history(file.value()).value(), 1u);  // nothing published
  // The full-rights capability still commits and aborting afterwards is a
  // clean error (the draft was consumed exactly once).
  EXPECT_TRUE(client_->commit(draft.value()).ok());
  EXPECT_EQ(client_->history(file.value()).value(), 2u);
}

TEST_F(MultiVersionSuite, PageSharingAcrossVersions) {
  const auto file = client_->create_file();
  // Commit v1 with 8 pages.
  auto draft = client_->new_version(file.value());
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(client_->write_page(draft.value(), p, Buffer{1}).ok());
  }
  ASSERT_TRUE(client_->commit(draft.value()).ok());
  const auto pages_after_v1 = server_->page_stats().live_pages;
  // v2 changes one page: exactly one new page, everything else shared.
  draft = client_->new_version(file.value());
  ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{2}).ok());
  ASSERT_TRUE(client_->commit(draft.value()).ok());
  EXPECT_EQ(server_->page_stats().live_pages, pages_after_v1 + 1);
}

TEST_F(MultiVersionSuite, DestroyReleasesAllVersions) {
  const auto file = client_->create_file();
  for (int v = 0; v < 3; ++v) {
    const auto draft = client_->new_version(file.value());
    ASSERT_TRUE(client_->write_page(draft.value(), 0, Buffer{1}).ok());
    ASSERT_TRUE(client_->commit(draft.value()).ok());
  }
  ASSERT_TRUE(client_->destroy(file.value()).ok());
  EXPECT_EQ(server_->page_stats().live_pages, 0u);
  EXPECT_EQ(server_->page_stats().live_nodes, 0u);
}

TEST_F(MultiVersionSuite, ReadOnlyCapabilityCannotForkOrCommit) {
  const auto file = client_->create_file();
  rpc::Transport& t = *transport_;
  const auto read_only =
      restrict_capability(t, file.value(), core::rights::kRead);
  ASSERT_TRUE(read_only.ok());
  EXPECT_TRUE(client_->read_page(read_only.value(), 0).ok());
  EXPECT_TRUE(client_->history(read_only.value()).ok());
  EXPECT_EQ(client_->new_version(read_only.value()).error(),
            ErrorCode::permission_denied);
}

}  // namespace
}  // namespace amoeba::servers
