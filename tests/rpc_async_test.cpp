// Tests for the completion-based RPC core: pipelined trans_async with
// out-of-order completion, the one-shot completion registry, the
// generation-guarded (port -> machine) cache under pipelining, concurrent
// set_default_timeout, and the batch envelope (codec, dispatch, per-entry
// status, fan-out).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "amoeba/net/network.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"

namespace amoeba::rpc {
namespace {

using namespace std::chrono_literals;

constexpr std::uint16_t kFast = 2;
constexpr std::uint16_t kSlow = 3;  // handler stalls before answering

/// Echoes params[0]+1 and the request data; kSlow stalls first.
class SluggishEcho final : public Service {
 public:
  using Service::Service;
  ~SluggishEcho() override { stop(); }

 protected:
  net::Message handle(const net::Delivery& request) override {
    if (request.message.header.opcode == kSlow) {
      std::this_thread::sleep_for(400ms);
    }
    net::Message reply = net::make_reply(request.message, ErrorCode::ok);
    reply.header.params[0] = request.message.header.params[0] + 1;
    reply.data = request.message.data;
    return reply;
  }
};

net::Message request_to(Port dest, std::uint16_t opcode, std::uint64_t tag) {
  net::Message req;
  req.header.dest = dest;
  req.header.opcode = opcode;
  req.header.params[0] = tag;
  return req;
}

TEST(PipelineTest, SingleThreadKeepsManyTransactionsInFlight) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2001), "echo");
  service.start();
  Transport transport(cm, 1);

  constexpr std::uint64_t kWindow = 64;
  std::vector<Future> futures;
  futures.reserve(kWindow);
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    futures.push_back(
        transport.trans_async(request_to(service.put_port(), kFast, i)));
  }
  // All of them were issued before any was collected: one thread, many
  // outstanding transactions.
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().message.header.params[0], i + 1);
  }
  EXPECT_EQ(service.requests_served(), kWindow);
  EXPECT_EQ(transport.in_flight(), 0u);
  EXPECT_EQ(transport.stats().transactions, kWindow);
}

TEST(PipelineTest, CompletionsArriveOutOfIssueOrderWithoutCrossWiring) {
  // Pipeline slow and fast requests; with two workers the fast ones
  // complete while the slow ones are still stalled, and every future must
  // resolve with its OWN reply (the completion registry keys on the
  // one-shot reply port, so nothing can cross-wire).
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2002), "echo");
  service.start(2);
  Transport transport(cm, 1);

  // Alternate slow/fast so round-robin delivery parks all slow requests on
  // one worker and all fast ones on the other.
  std::vector<Future> slow;
  std::vector<Future> fast;
  for (std::uint64_t i = 0; i < 3; ++i) {
    slow.push_back(transport.trans_async(
        request_to(service.put_port(), kSlow, 100 + i), 10'000ms));
    fast.push_back(transport.trans_async(
        request_to(service.put_port(), kFast, 200 + i), 10'000ms));
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto reply = fast[i].get();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().message.header.params[0], 200 + i + 1);
  }
  // Issued first, still cooking: the last slow reply needs ~3 stall
  // periods of worker time, the fast gets above took milliseconds.
  EXPECT_FALSE(slow[2].ready());
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto reply = slow[i].get();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().message.header.params[0], 100 + i + 1);
  }
}

TEST(PipelineTest, FutureIsOneShotAndInvalidWhenEmpty) {
  Future empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_THROW((void)empty.get(), UsageError);

  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2003), "echo");
  service.start();
  Transport transport(cm, 1);
  Future future =
      transport.trans_async(request_to(service.put_port(), kFast, 7));
  EXPECT_TRUE(future.valid());
  ASSERT_TRUE(future.get().ok());
  EXPECT_FALSE(future.valid());  // consumed
  EXPECT_THROW((void)future.get(), UsageError);
}

TEST(PipelineTest, AsyncToUnknownPortFailsFast) {
  net::Network net;
  net::Machine& cm = net.add_machine("client");
  Transport transport(cm, 1);
  Future future = transport.trans_async(request_to(Port(0xDEAD), kFast, 0));
  ASSERT_TRUE(future.wait_for(1'000ms));  // resolved, not timed out
  EXPECT_EQ(future.get().error(), ErrorCode::no_such_port);
}

TEST(PipelineTest, PipelinedTimeoutsAllFire) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2004), "echo");
  service.start();
  Transport transport(cm, 1);

  std::vector<Future> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(transport.trans_async(
        request_to(service.put_port(), kSlow, 0), 50ms));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().error(), ErrorCode::timeout);
  }
  EXPECT_EQ(transport.stats().timeouts, 4u);
}

TEST(PipelineTest, LostReplyTimesOutUnderContinuousTraffic) {
  // A transaction whose reply never comes must hit its deadline even
  // while other replies keep the completion pump busy (the pump checks
  // deadlines after every reap, not only on idle ticks).
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2010), "echo");
  service.start(2);
  Transport transport(cm, 1);

  // A bare GET with no service loop behind it: the frame is admitted
  // (transmit succeeds) but no reply ever comes -- a lost-reply stand-in.
  net::Receiver black_hole = sm.listen(Port(0x2FFF));
  net::Message swallowed;
  swallowed.header.dest = black_hole.put_port();
  Future lost = transport.trans_async(std::move(swallowed), 300ms);

  const auto begin = std::chrono::steady_clock::now();
  bool timed_out_under_traffic = false;
  std::deque<Future> window;
  while (std::chrono::steady_clock::now() - begin < 5'000ms) {
    while (window.size() < 4) {
      window.push_back(
          transport.trans_async(request_to(service.put_port(), kFast, 1)));
    }
    ASSERT_TRUE(window.front().get().ok());
    window.pop_front();
    if (lost.ready()) {
      timed_out_under_traffic = true;
      break;
    }
  }
  EXPECT_TRUE(timed_out_under_traffic);
  while (!window.empty()) {
    ASSERT_TRUE(window.front().get().ok());
    window.pop_front();
  }
  EXPECT_EQ(lost.get().error(), ErrorCode::timeout);
  EXPECT_EQ(transport.stats().timeouts, 1u);
}

TEST(CacheTest, RebindMidFlightInvalidatesExactlyOnce) {
  // Many transactions resolved through one stale cache entry must produce
  // ONE invalidation and ONE re-LOCATE, not a storm (the entries carry
  // generation stamps; LOCATEs are single-flight).
  net::Network net;
  net::Machine& a = net.add_machine("a");
  net::Machine& b = net.add_machine("b");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(a, Port(0x2005), "echo");
  service.start();
  Transport transport(cm, 1);

  ASSERT_TRUE(transport.trans(request_to(service.put_port(), kFast, 0)).ok());
  ASSERT_EQ(net.stats().locates.load(), 1u);

  service.stop();
  service.rebind(b);
  service.start();

  constexpr std::uint64_t kWindow = 16;
  std::vector<Future> futures;
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    futures.push_back(
        transport.trans_async(request_to(service.put_port(), kFast, i)));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  const auto stats = transport.stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(net.stats().locates.load(), 2u);  // warm-up + one re-LOCATE
  EXPECT_EQ(service.machine().id(), b.id());
}

TEST(CacheTest, ConcurrentClientsAfterRebindShareOneRelocate) {
  net::Network net;
  net::Machine& a = net.add_machine("a");
  net::Machine& b = net.add_machine("b");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(a, Port(0x2006), "echo");
  service.start(2);
  Transport transport(cm, 1);

  ASSERT_TRUE(transport.trans(request_to(service.put_port(), kFast, 0)).ok());
  service.stop();
  service.rebind(b);
  service.start(2);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        if (!transport.trans(request_to(service.put_port(), kFast, 1), 5'000ms)
                 .ok()) {
          failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  const auto stats = transport.stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
  EXPECT_EQ(net.stats().locates.load(), 2u);
}

TEST(TransportConfigTest, SetDefaultTimeoutRacesTransSafely) {
  // The header promises full thread-safety; the default timeout is an
  // atomic so this loop is a TSan regression test, not just a smoke test.
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  SluggishEcho service(sm, Port(0x2007), "echo");
  service.start(2);
  Transport transport(cm, 1);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50 && !done.load(); ++i) {
          if (!transport.trans(request_to(service.put_port(), kFast, 1)).ok()) {
            failures.fetch_add(1);
          }
        }
        done.store(true);
      });
    }
    while (!done.load()) {
      transport.set_default_timeout(1'000ms + 1ms * (failures.load() % 7));
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(transport.default_timeout(), 1'000ms);
}

// ----------------------------------------------------------------- batching

TEST(BatchCodecTest, RoundTripsRequestsAndReplies) {
  std::vector<BatchRequest> requests(2);
  requests[0].opcode = 7;
  requests[0].capability[3] = 0xAB;
  requests[0].params = {1, 2, 3, 4};
  requests[0].data = {9, 9, 9};
  requests[1].opcode = 8;

  const Buffer wire = encode_batch(requests);
  const auto decoded = decode_batch_request(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].opcode, 7u);
  EXPECT_EQ((*decoded)[0].capability[3], 0xAB);
  EXPECT_EQ((*decoded)[0].params, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ((*decoded)[0].data, (Buffer{9, 9, 9}));
  EXPECT_EQ((*decoded)[1].opcode, 8u);

  std::vector<BatchReply> replies(1);
  replies[0].status = ErrorCode::insufficient_funds;
  replies[0].params = {42, 0, 0, 0};
  const auto reply_decoded = decode_batch_reply(encode_batch(replies));
  ASSERT_TRUE(reply_decoded.has_value());
  EXPECT_EQ((*reply_decoded)[0].status, ErrorCode::insufficient_funds);
  EXPECT_EQ((*reply_decoded)[0].params[0], 42u);
}

TEST(BatchCodecTest, MalformedEnvelopesRejected) {
  EXPECT_FALSE(decode_batch_request(Buffer{1, 2}).has_value());  // short count
  Writer huge;
  huge.u32(1u << 24);  // count far beyond kMaxBatchEntries
  EXPECT_FALSE(decode_batch_request(huge.buffer()).has_value());
  Writer truncated;
  truncated.u32(1);
  truncated.u16(5);  // entry cut off after the opcode
  EXPECT_FALSE(decode_batch_request(truncated.buffer()).has_value());
  Buffer trailing = encode_batch(std::vector<BatchRequest>(1));
  trailing.push_back(0);  // garbage after the last entry
  EXPECT_FALSE(decode_batch_request(trailing).has_value());
  // The empty envelope is well-formed.
  const auto empty = decode_batch_request(encode_batch(std::vector<BatchRequest>{}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(BatchTest, PerEntryStatusesComeBackInOrder) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Service service(sm, Port(0x2008), "table");
  service.on(1, [](const net::Delivery& request) {
    net::Message reply = net::make_reply(request.message, ErrorCode::ok);
    reply.header.params[0] = request.message.header.params[0] * 2;
    reply.data = request.message.data;
    return reply;
  });
  service.start();
  Transport transport(cm, 1);

  Batch batch(transport, service.put_port());
  EXPECT_EQ(batch.add(1, nullptr, {5, 5}, {21, 0, 0, 0}), 0u);
  EXPECT_EQ(batch.add(9), 1u);            // no handler for opcode 9
  EXPECT_EQ(batch.add(kBatchOpcode), 2u);  // nested envelopes are refused
  EXPECT_EQ(batch.add(1, nullptr, {}, {4, 0, 0, 0}), 3u);
  auto replies = batch.run();
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies.value().size(), 4u);
  EXPECT_EQ(replies.value()[0].status, ErrorCode::ok);
  EXPECT_EQ(replies.value()[0].params[0], 42u);
  EXPECT_EQ(replies.value()[0].data, (Buffer{5, 5}));
  EXPECT_EQ(replies.value()[1].status, ErrorCode::no_such_operation);
  EXPECT_EQ(replies.value()[2].status, ErrorCode::invalid_argument);
  EXPECT_EQ(replies.value()[3].status, ErrorCode::ok);
  EXPECT_EQ(replies.value()[3].params[0], 8u);

  // One frame each way carried all four sub-requests.
  EXPECT_EQ(net.stats().batch_frames.load(), 2u);
  EXPECT_EQ(service.requests_served(), 1u);       // one envelope
  EXPECT_EQ(service.batched_requests(), 4u);      // four sub-requests
  EXPECT_TRUE(batch.empty());  // run() consumed the queue
}

TEST(BatchTest, EmptyBatchSkipsTheNetwork) {
  net::Network net;
  net::Machine& cm = net.add_machine("client");
  Transport transport(cm, 1);
  Batch batch(transport, Port(0x2009));
  auto replies = batch.run();
  ASSERT_TRUE(replies.ok());
  EXPECT_TRUE(replies.value().empty());
  EXPECT_EQ(net.stats().unicasts.load(), 0u);
  EXPECT_FALSE(batch.run_async().valid());
}

TEST(BatchTest, MalformedEnvelopeGetsEnvelopeLevelError) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Service service(sm, Port(0x200A), "table");
  service.start();
  Transport transport(cm, 1);

  net::Message bogus;
  bogus.header.dest = service.put_port();
  bogus.header.opcode = kBatchOpcode;
  bogus.data = {0xFF, 0xFF};  // not a valid envelope
  auto reply = transport.trans(std::move(bogus));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().message.header.status, ErrorCode::invalid_argument);
}

TEST(BatchTest, RunAsyncPipelinesWholeEnvelopes) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Service service(sm, Port(0x200B), "table");
  service.on(1, [](const net::Delivery& request) {
    net::Message reply = net::make_reply(request.message, ErrorCode::ok);
    reply.header.params[0] = request.message.header.params[0] + 1;
    return reply;
  });
  service.start(2);
  Transport transport(cm, 1);

  Batch batch(transport, service.put_port());
  std::vector<Future> envelopes;
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      batch.add(1, nullptr, {}, {round * 100 + i, 0, 0, 0});
    }
    envelopes.push_back(batch.run_async());  // consumes; batch is reusable
  }
  for (std::uint64_t round = 0; round < 4; ++round) {
    auto replies = Batch::parse_reply(envelopes[round].get());
    ASSERT_TRUE(replies.ok());
    ASSERT_EQ(replies.value().size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(replies.value()[i].params[0], round * 100 + i + 1);
    }
  }
  EXPECT_EQ(service.batched_requests(), 32u);
}

TEST(BatchTest, FanOutRunsSubRequestsConcurrently) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Service service(sm, Port(0x200C), "sleepy");
  service.on(1, [](const net::Delivery& request) {
    std::this_thread::sleep_for(200ms);
    return net::make_reply(request.message, ErrorCode::ok);
  });
  service.set_batch_fan_out(4);
  service.start();
  Transport transport(cm, 1);

  Batch batch(transport, service.put_port());
  for (int i = 0; i < 4; ++i) {
    batch.add(1);
  }
  const auto begin = std::chrono::steady_clock::now();
  auto replies = batch.run(5'000ms);
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  ASSERT_TRUE(replies.ok());
  for (const auto& reply : replies.value()) {
    EXPECT_EQ(reply.status, ErrorCode::ok);
  }
  // Four 200ms handlers fanned across four helpers: well under the 800ms a
  // sequential pass would need.
  EXPECT_LT(elapsed, 600ms);
}

TEST(BatchTest, ReservedOpcodeCannotBeRegistered) {
  net::Network net;
  net::Machine& sm = net.add_machine("server");
  Service service(sm, Port(0x200D), "table");
  EXPECT_THROW(
      service.on(kBatchOpcode,
                 [](const net::Delivery& request) {
                   return net::make_reply(request.message, ErrorCode::ok);
                 }),
      UsageError);
}

}  // namespace
}  // namespace amoeba::rpc
