// SocketNetwork: the simulated LAN's delivery semantics over real TCP.
//
// Two (or more) SocketNetwork instances run in one test process and talk
// over 127.0.0.1, which is exactly the multi-process deployment shape --
// nothing is shared between the instances except the deterministic
// one-way function.  The suite adapts net_test's delivery semantics to
// the places where a real wire differs from the simulated one:
//
//   * transmit to a machine no frame or locate reply ever named fails
//     fast (the "no GET outstanding" signal), but a frame sent into a
//     torn link is silently lost and the sender still sees true --
//     best-effort, recovered by the at-most-once layer;
//   * fault injection comes from net::FrameProxy between the nodes, not
//     from the local fault knobs.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "amoeba/net/frame_proxy.hpp"
#include "amoeba/net/socket_network.hpp"
#include "test_seed.hpp"

namespace amoeba::net {
namespace {

using namespace std::chrono_literals;

Message make_data(Port dest, std::uint16_t opcode) {
  Message m;
  m.header.dest = dest;
  m.header.opcode = opcode;
  return m;
}

SocketNetwork::SocketConfig server_config(std::uint32_t machine_base) {
  SocketNetwork::SocketConfig config;
  config.net.seed = test::seed_base(9) + machine_base;
  config.net.machine_id_base = machine_base;
  config.locate_timeout = 250ms;
  return config;
}

SocketNetwork::SocketConfig client_config(std::uint32_t machine_base,
                                          std::uint16_t server_port) {
  SocketNetwork::SocketConfig config = server_config(machine_base);
  config.listen = false;
  config.peers = {{"127.0.0.1", server_port}};
  return config;
}

TEST(SocketNetworkTest, CrossNodeRoundTripWithSourceStamping) {
  SocketNetwork server_net(server_config(0));
  Machine& server = server_net.add_machine("server");
  const Port g(0xAAAA);
  Receiver service = server.listen(g);

  SocketNetwork client_net(client_config(100, server_net.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));

  // Broadcast LOCATE across the wire finds the remote listener.
  const auto located = client.locate(service.put_port());
  ASSERT_TRUE(located.has_value());
  EXPECT_EQ(*located, server.id());
  EXPECT_EQ(located->value(), 1u);  // base 0, first machine

  const Port reply_get(0x1111);
  Receiver reply_rx = client.listen(reply_get);
  Message request = make_data(service.put_port(), 7);
  request.header.reply = reply_get;
  ASSERT_TRUE(client.transmit(request, *located));

  const auto delivery = service.receive({}, 2000ms);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->message.header.opcode, 7);
  // The frame carries the true source id; disjoint machine_id_base makes
  // it unique clusterwide (client is machine 101, not 1).
  EXPECT_EQ(delivery->src, client.id());
  EXPECT_EQ(delivery->src.value(), 101u);
  // The reply port crossed the wire transformed: F(reply_get), never the
  // secret get-port itself.
  EXPECT_EQ(delivery->message.header.reply, reply_rx.put_port());
  EXPECT_NE(delivery->message.header.reply, reply_get);

  // Reply along the stamped source: the server needs no peer config, the
  // route was learned from the request frame.
  Message reply = make_reply(delivery->message, ErrorCode::ok);
  ASSERT_TRUE(server.transmit(reply, delivery->src));
  const auto response = reply_rx.receive({}, 2000ms);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->message.header.status, ErrorCode::ok);
}

TEST(SocketNetworkTest, LocateMissesSecretGetPortAndWithdrawnGets) {
  SocketNetwork server_net(server_config(0));
  Machine& server = server_net.add_machine("server");
  const Port g(0xBBBB);

  SocketNetwork client_net(client_config(200, server_net.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));

  Port put;
  {
    Receiver service = server.listen(g);
    put = service.put_port();
    ASSERT_NE(put, g);
    // The registration is on F(G): locating G itself times out silently
    // (the secret never crossed the wire, nobody answers for it).
    EXPECT_FALSE(client.locate(g).has_value());
    EXPECT_TRUE(client.locate(put).has_value());
  }
  // GET withdrawn: the next locate gets no reply and reports a miss --
  // the migration signal transports use to re-resolve.
  EXPECT_FALSE(client.locate(put).has_value());
}

TEST(SocketNetworkTest, TransmitToUnknownMachineFailsFast) {
  SocketNetwork server_net(server_config(0));
  server_net.add_machine("server");

  SocketNetwork client_net(client_config(300, server_net.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));

  // No frame or locate reply ever named machine 42: the send is rejected
  // exactly like the simulated wire's "no GET outstanding", so transports
  // invalidate their location cache instead of retransmitting forever.
  EXPECT_FALSE(client.transmit(make_data(Port(0xDEAD), 1), MachineId(42)));
  EXPECT_GE(client_net.socket_stats().unrouted, 1u);
}

TEST(SocketNetworkTest, RoundRobinAcrossRemoteGets) {
  SocketNetwork server_net(server_config(0));
  Machine& server = server_net.add_machine("server");
  const Port g(0x6666);
  Receiver r1 = server.listen(g);
  Receiver r2 = server.listen(g);

  SocketNetwork client_net(client_config(400, server_net.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));
  const auto located = client.locate(r1.put_port());
  ASSERT_TRUE(located.has_value());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.transmit(make_data(r1.put_port(), 1), *located));
  }
  int count1 = 0;
  int count2 = 0;
  while (r1.receive({}, 300ms).has_value()) ++count1;
  while (r2.receive({}, 300ms).has_value()) ++count2;
  EXPECT_EQ(count1, 2);
  EXPECT_EQ(count2, 2);
}

TEST(SocketNetworkTest, BroadcastReachesLocalAndRemoteListeners) {
  SocketNetwork server_net(server_config(0));
  Machine& remote = server_net.add_machine("remote");
  const Port g(0x7777);
  Receiver remote_rx = remote.listen(g);

  SocketNetwork client_net(client_config(500, server_net.listen_port()));
  Machine& local = client_net.add_machine("local");
  Machine& sender = client_net.add_machine("sender");
  Receiver local_rx = local.listen(g);
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));

  sender.broadcast(make_data(remote_rx.put_port(), 3));
  EXPECT_TRUE(local_rx.receive({}, 2000ms).has_value());
  const auto delivery = remote_rx.receive({}, 2000ms);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->src, sender.id());
}

TEST(SocketNetworkTest, ReconnectPreservesIdentityAcrossSever) {
  SocketNetwork server_net(server_config(0));
  Machine& server = server_net.add_machine("server");
  const Port g(0xCCCC);
  Receiver service = server.listen(g);

  FrameProxy proxy({.target_host = "127.0.0.1",
                    .target_port = server_net.listen_port(),
                    .seed = test::seed_base(9)});
  SocketNetwork client_net(client_config(600, proxy.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));
  ASSERT_TRUE(client.locate(service.put_port()).has_value());

  Message request = make_data(service.put_port(), 1);
  request.header.client = 0xC0FFEE;
  request.header.seq = 1;
  ASSERT_TRUE(client.transmit(request, server.id()));
  auto first = service.receive({}, 2000ms);
  ASSERT_TRUE(first.has_value());

  proxy.sever();  // tears client->proxy and proxy->server at once

  // The dialer re-dials with backoff; a frame sent into the gap may be
  // lost (best-effort), so retry until one arrives -- exactly what the
  // at-most-once transport's retransmission loop does.
  request.header.seq = 2;
  request.header.flags = kFlagRetransmit;
  std::optional<Delivery> second;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!second.has_value() && std::chrono::steady_clock::now() < deadline) {
    client.transmit(request, server.id());
    second = service.receive({}, 100ms);
  }
  ASSERT_TRUE(second.has_value());
  // At-most-once identity lives in the frame, not the connection: after a
  // full reconnect the server still sees the same (machine, client) key,
  // so its reply cache keeps suppressing duplicates.
  EXPECT_EQ(second->src, first->src);
  EXPECT_EQ(second->message.header.client, first->message.header.client);
  EXPECT_GE(client_net.socket_stats().connects, 2u);
}

TEST(FrameProxyTest, PartitionBlocksFramesUntilLifted) {
  SocketNetwork server_net(server_config(0));
  Machine& server = server_net.add_machine("server");
  const Port g(0xDDDD);
  Receiver service = server.listen(g);

  FrameProxy proxy({.target_host = "127.0.0.1",
                    .target_port = server_net.listen_port(),
                    .seed = test::seed_base(9)});
  SocketNetwork client_net(client_config(700, proxy.listen_port()));
  Machine& client = client_net.add_machine("client");
  ASSERT_TRUE(client_net.wait_connected(0, 2000ms));
  ASSERT_TRUE(client.locate(service.put_port()).has_value());

  proxy.set_partitioned(true);
  // The connection stays up, so the sender still believes the frame was
  // admitted -- the half-alive failure mode retransmission must absorb.
  EXPECT_TRUE(client.transmit(make_data(service.put_port(), 1), server.id()));
  EXPECT_FALSE(service.receive({}, 100ms).has_value());
  EXPECT_GE(proxy.stats().dropped, 1u);

  proxy.set_partitioned(false);
  EXPECT_TRUE(client.transmit(make_data(service.put_port(), 2), server.id()));
  const auto delivery = service.receive({}, 2000ms);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->message.header.opcode, 2);
}

}  // namespace
}  // namespace amoeba::net
