// The capability-based UNIX file system (§3.5): "to ease the problem of
// moving existing applications from UNIX to Amoeba."
//
// A small "application" written against the POSIX-flavoured API -- paths,
// descriptors, append-mode logging, directory listings -- running
// unchanged on capabilities: every descriptor is a (capability, offset)
// pair, every directory entry a (name, capability) pair on a directory
// server, every byte stored via the flat file and block servers.
#include <cstdio>
#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/unixfs.hpp"

using namespace amoeba;
using servers::UnixFs;

namespace {

Buffer bytes(std::string_view s) { return Buffer(s.begin(), s.end()); }

std::string text(const Buffer& b) { return std::string(b.begin(), b.end()); }

}  // namespace

int main() {
  std::printf("== UNIX compatibility layer on capabilities ==\n\n");

  net::Network net;
  net::Machine& host = net.add_machine("fileserver");
  net::Machine& ws = net.add_machine("workstation");
  Rng rng(8);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 256;
  geometry.block_size = 512;
  servers::BlockServer blocks(host, Port(0xB10C), scheme, 1, geometry);
  blocks.start();
  servers::FlatFileServer files(host, Port(0xF17E), scheme, 2,
                                blocks.put_port());
  files.start();
  servers::DirectoryServer dirs(host, Port(0xD1D1), scheme, 3);
  dirs.start();

  rpc::Transport me(ws, 4);
  UnixFs fs =
      UnixFs::format(me, dirs.put_port(), files.put_port()).value();
  std::printf("mkfs: root capability %s\n\n",
              core::to_string(fs.root()).c_str());

  // The "application": a log rotator.
  (void)fs.mkdir("var");
  (void)fs.mkdir("var/log");
  const int log = fs.open("var/log/app.log",
                          UnixFs::kWrite | UnixFs::kCreate | UnixFs::kAppend)
                      .value();
  for (int i = 1; i <= 3; ++i) {
    const std::string line = "event " + std::to_string(i) + "\n";
    (void)fs.write(log, bytes(line));
  }
  (void)fs.close(log);
  std::printf("wrote 3 log lines (O_APPEND)\n");

  // Read it back.
  const int rd = fs.open("var/log/app.log", UnixFs::kRead).value();
  std::printf("log contents:\n%s", text(fs.read(rd, 1024).value()).c_str());
  (void)fs.close(rd);

  // Rotate: rename, then start a fresh log.
  (void)fs.rename("var/log/app.log", "var/log/app.log.1");
  const int fresh = fs.open("var/log/app.log",
                            UnixFs::kWrite | UnixFs::kCreate).value();
  (void)fs.write(fresh, bytes("event 4\n"));
  (void)fs.close(fresh);

  std::printf("\nafter rotation, var/log contains:\n");
  const auto listing = fs.readdir("var/log").value();
  for (const auto& entry : listing) {
    const auto st = fs.stat("var/log/" + entry.name).value();
    std::printf("  %-14s %4llu bytes   (capability %s)\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(st.size),
                core::to_string(entry.capability).c_str());
  }

  // A second user mounts the same root and reads the rotated log --
  // sharing a file system is passing 16 bytes.
  rpc::Transport other(net.add_machine("colleague"), 5);
  UnixFs their_fs(other, files.put_port(), fs.root());
  const int their_fd = their_fs.open("var/log/app.log.1",
                                     UnixFs::kRead).value();
  std::printf("\ncolleague (second mount) reads app.log.1: %zu bytes\n",
              their_fs.read(their_fd, 1024).value().size());

  (void)fs.unlink("var/log/app.log.1");
  std::printf("unlink app.log.1 -> stat: %s\n",
              error_name(fs.stat("var/log/app.log.1").error()));
  return 0;
}
