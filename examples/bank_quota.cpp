// Accounting and quotas via the bank server (§3.6).
//
// "By having the file server charge x dollars per kiloblock of disk
// space, quotas can be implemented by limiting how many dollars each
// client has.  CPU time could be charged in francs, phototypesetter pages
// in yen, and so on."
//
// Two users with different budgets share a priced file server; one runs
// out of disk money, converts yen to dollars at the bank, and continues.
#include <cstdio>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/flat_file_server.hpp"

using namespace amoeba;
using servers::currency::kDollar;
using servers::currency::kYen;

int main() {
  std::printf("== Bank server: accounting, currencies, quotas ==\n\n");

  net::Network net;
  net::Machine& host = net.add_machine("server-host");
  net::Machine& alice_ws = net.add_machine("alice");
  net::Machine& bob_ws = net.add_machine("bob");

  Rng rng(7);
  const auto scheme = core::make_scheme(core::SchemeKind::encrypted, rng);

  servers::BankServer bank(host, Port(0xBA7C), scheme, 1);
  bank.set_conversion_rate(kYen, kDollar, 1, 150);  // 150 yen = 1 dollar
  bank.start();

  servers::BlockServer::Geometry geometry;
  geometry.block_count = 256;
  geometry.block_size = 1024;
  servers::BlockServer blocks(host, Port(0xB10C), scheme, 2, geometry);
  blocks.start();

  // The file server charges 1 dollar per kiloblock.
  rpc::Transport fs_transport(host, 3);
  servers::BankClient fs_bank(fs_transport, bank.put_port());
  const auto fs_account = fs_bank.create_account().value();
  servers::FlatFileServer files(host, Port(0xF17E), scheme, 4,
                                blocks.put_port());
  servers::FlatFileServer::Pricing pricing;
  pricing.bank_port = bank.put_port();
  pricing.server_account = fs_account;
  pricing.currency = kDollar;
  pricing.price_per_block = 1;
  files.set_pricing(pricing);
  files.start();

  // Alice: 10 dollars.  Bob: 2 dollars and 1200 yen.
  rpc::Transport alice(alice_ws, 5);
  rpc::Transport bob(bob_ws, 6);
  servers::BankClient alice_bank(alice, bank.put_port());
  servers::BankClient bob_bank(bob, bank.put_port());
  const auto alice_acct = alice_bank.create_account().value();
  const auto bob_acct = bob_bank.create_account().value();
  (void)alice_bank.mint(bank.master_capability(), alice_acct, kDollar, 10);
  (void)bob_bank.mint(bank.master_capability(), bob_acct, kDollar, 2);
  (void)bob_bank.mint(bank.master_capability(), bob_acct, kYen, 1200);

  auto show = [&](const char* who, servers::BankClient& bc,
                  const core::Capability& acct) {
    std::printf("  %-6s $%-4lld  ¥%-6lld\n", who,
                static_cast<long long>(bc.balance(acct, kDollar).value()),
                static_cast<long long>(bc.balance(acct, kYen).value()));
  };
  std::printf("initial balances:\n");
  show("alice", alice_bank, alice_acct);
  show("bob", bob_bank, bob_acct);

  // Alice buys 8 blocks of file; Bob tries 4 and hits his quota at 2.
  servers::FlatFileClient alice_files(alice, files.put_port());
  servers::FlatFileClient bob_files(bob, files.put_port());

  const auto alice_file = alice_files.create(&alice_acct).value();
  const auto a = alice_files.write(alice_file, 0, Buffer(8 * 1024, 'a'));
  std::printf("\nalice writes 8 KiB: %s\n", error_name(a.error()));

  const auto bob_file = bob_files.create(&bob_acct).value();
  auto b = bob_files.write(bob_file, 0, Buffer(2 * 1024, 'b'));
  std::printf("bob   writes 2 KiB: %s\n", error_name(b.error()));
  b = bob_files.write(bob_file, 2 * 1024, Buffer(2 * 1024, 'b'));
  std::printf("bob   writes 2 more KiB: %s  <- quota exhausted\n",
              error_name(b.error()));

  // Bob converts yen to dollars (1200 yen -> 8 dollars) and retries.
  const auto converted = bob_bank.convert(bob_acct, kYen, kDollar, 1200);
  std::printf("bob converts ¥1200 -> $%lld\n",
              static_cast<long long>(converted.value()));
  b = bob_files.write(bob_file, 2 * 1024, Buffer(2 * 1024, 'b'));
  std::printf("bob   retries 2 KiB: %s\n\n", error_name(b.error()));

  std::printf("final balances:\n");
  show("alice", alice_bank, alice_acct);
  show("bob", bob_bank, bob_acct);
  std::printf("  fs    $%lld (earned from storage)\n",
              static_cast<long long>(
                  fs_bank.balance(fs_account, kDollar).value()));

  // Destroying a file refunds the blocks.
  (void)alice_files.destroy(alice_file);
  std::printf("\nalice destroys her file -> refund: $%lld\n",
              static_cast<long long>(
                  alice_bank.balance(alice_acct, kDollar).value()));
  return 0;
}
