// The multiversion file server in action (§3.5): copy-on-write versions,
// atomic commit, optimistic-concurrency conflicts, and time travel through
// the version history -- the workflow designed for write-once media.
#include <cstdio>
#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/multiversion_server.hpp"

using namespace amoeba;

namespace {

Buffer page_of(const std::string& text) {
  return Buffer(text.begin(), text.end());
}

std::string text_of(const Buffer& page) {
  std::string s(page.begin(), page.end());
  if (const auto nul = s.find_first_of('\0'); nul != std::string::npos) {
    s.resize(nul);
  }
  return s;
}

}  // namespace

int main() {
  std::printf("== Multiversion file server: atomic commits ==\n\n");

  net::Network net;
  net::Machine& host = net.add_machine("archive");
  net::Machine& alice_ws = net.add_machine("alice");
  net::Machine& bob_ws = net.add_machine("bob");
  Rng rng(3);
  servers::MultiVersionServer server(
      host, Port(0x3171), core::make_scheme(core::SchemeKind::commutative, rng),
      1, /*page_size=*/128);
  server.start();

  rpc::Transport alice(alice_ws, 2);
  rpc::Transport bob(bob_ws, 3);
  servers::MultiVersionClient alice_mv(alice, server.put_port());
  servers::MultiVersionClient bob_mv(bob, server.put_port());

  // Alice creates a document and commits two versions.
  const auto doc = alice_mv.create_file().value();
  for (const char* draft_text : {"v1: first draft", "v2: reviewed draft"}) {
    const auto draft = alice_mv.new_version(doc).value();
    (void)alice_mv.write_page(draft, 0, page_of(draft_text));
    const auto version = alice_mv.commit(draft);
    std::printf("alice committed version %llu: \"%s\"\n",
                static_cast<unsigned long long>(version.value()), draft_text);
  }

  // Concurrent editing: alice and bob both fork version 2.
  std::printf("\nalice and bob both fork the current head...\n");
  const auto alice_draft = alice_mv.new_version(doc).value();
  const auto bob_draft = bob_mv.new_version(doc).value();
  (void)alice_mv.write_page(alice_draft, 0, page_of("v3: alice's edits"));
  (void)bob_mv.write_page(bob_draft, 0, page_of("v3: bob's edits"));

  const auto alice_commit = alice_mv.commit(alice_draft);
  std::printf("alice commits first: %s (version %llu)\n",
              error_name(alice_commit.error()),
              static_cast<unsigned long long>(alice_commit.value_or(0)));
  const auto bob_commit = bob_mv.commit(bob_draft);
  std::printf("bob commits second:  %s  <- optimistic concurrency\n",
              error_name(bob_commit.error()));
  (void)bob_mv.abort(bob_draft);

  // Bob rebases: fork the new head (sees alice's text), apply his change.
  const auto rebase = bob_mv.new_version(doc).value();
  std::printf("bob forks again; his draft already reads: \"%s\"\n",
              text_of(bob_mv.read_page(rebase, 0).value()).c_str());
  (void)bob_mv.write_page(rebase, 0, page_of("v4: merged edits"));
  (void)bob_mv.commit(rebase);

  // Full history remains readable -- committed versions are immutable.
  const auto versions = alice_mv.history(doc).value();
  std::printf("\nhistory of the document (%llu versions):\n",
              static_cast<unsigned long long>(versions));
  for (std::uint64_t v = 0; v < versions; ++v) {
    const auto page = alice_mv.read_page(doc, 0, v).value();
    std::printf("  version %llu: \"%s\"\n",
                static_cast<unsigned long long>(v), text_of(page).c_str());
  }
  const auto direct_write = alice_mv.write_page(doc, 0, page_of("vandal"));
  std::printf("\nwriting a committed version directly: %s\n",
              error_name(direct_write.error()));

  // Copy-on-write economics: a large file, one page changed.
  std::printf("\ncopy-on-write: 64-page file, then one-page change\n");
  const auto big = alice_mv.create_file().value();
  auto draft = alice_mv.new_version(big).value();
  for (std::uint32_t p = 0; p < 64; ++p) {
    (void)alice_mv.write_page(draft, p, page_of("bulk"));
  }
  (void)alice_mv.commit(draft);
  const auto before = server.page_stats();
  draft = alice_mv.new_version(big).value();
  (void)alice_mv.write_page(draft, 7, page_of("patched"));
  (void)alice_mv.commit(draft);
  const auto after = server.page_stats();
  std::printf("  new version cost: %llu data pages, %llu tree nodes "
              "(file has 64 pages)\n",
              static_cast<unsigned long long>(after.pages_written -
                                              before.pages_written),
              static_cast<unsigned long long>(after.nodes_copied -
                                              before.nodes_copied));
  return 0;
}
