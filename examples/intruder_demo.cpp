// Fig. 1 live: clients, servers, intruders, and F-boxes.
//
// Runs the paper's attack catalogue against a live service twice --
// first under F-box protection (§2.2), then under the software key-matrix
// scheme with no F-boxes (§2.4) -- and prints the outcome of every attack.
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/softprot/filter.hpp"
#include "amoeba/softprot/handshake.hpp"

using namespace amoeba;
using namespace std::chrono_literals;

namespace {

void verdict(const char* attack, bool defended) {
  std::printf("  %-52s %s\n", attack, defended ? "DEFENDED" : "SUCCEEDED!");
}

void fbox_world() {
  std::printf("\n--- World 1: F-boxes on every network interface (§2.2) ---\n");
  net::Network net;
  net::Machine& server = net.add_machine("server");
  net::Machine& client = net.add_machine("client");
  net::Machine& intruder = net.add_machine("intruder");
  Rng rng(1);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer service(server, Port(0x6E7),
                               core::make_scheme(core::SchemeKind::one_way_xor, rng),
                               1, geometry);
  service.start();

  rpc::Transport me(client, 2);
  servers::BlockClient my_blocks(me, service.put_port());

  // Passive wiretap: the intruder records everything.
  Port seen_reply_port;
  std::optional<net::Message> captured_write;
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind != net::FrameKind::data) return;
    if (!rec.message.header.reply.is_null()) {
      seen_reply_port = rec.message.header.reply;
    }
    if (rec.message.header.opcode == servers::block_ops::kWrite.opcode) {
      captured_write = rec.message;
    }
  });

  const auto cap = my_blocks.allocate().value();
  (void)my_blocks.write(cap, Buffer{'v', '1'});

  // Attack 1: GET on the public put-port to impersonate the server.
  net::Receiver fake = intruder.listen(service.put_port());
  const bool a1 = !my_blocks.allocate().ok() ||
                  fake.receive({}, 30ms).has_value();
  verdict("impersonate server via GET(P)", !a1);

  // Attack 2: GET on an observed reply port to steal replies.
  net::Receiver steal = intruder.listen(seen_reply_port);
  (void)my_blocks.read(cap);
  verdict("steal replies via GET(observed P')",
          !steal.receive({}, 30ms).has_value());

  // Attack 3: forge capabilities by guessing check fields.
  rpc::Transport it(intruder, 3);
  servers::BlockClient intruder_blocks(it, service.put_port());
  Rng guess(99);
  bool forged = false;
  for (int i = 0; i < 2000 && !forged; ++i) {
    core::Capability probe = cap;
    probe.check = CheckField(guess.bits(48));
    forged = probe.check != cap.check && intruder_blocks.read(probe).ok();
  }
  verdict("forge capability (2000 random check fields)", !forged);

  // Attack 4: flip the rights field of a restricted capability.
  const auto read_only =
      servers::restrict_capability(me, cap, core::rights::kRead).value();
  core::Capability boosted = read_only;
  boosted.rights = Rights::all();
  verdict("re-enable rights bits on restricted capability",
          !intruder_blocks.write(boosted, Buffer{'x'}).ok());

  std::printf("  (wiretap saw %llu frames; none contained a get-port)\n",
              static_cast<unsigned long long>(net.stats().unicasts.load()));
}

void softprot_world() {
  std::printf("\n--- World 2: no F-boxes; key matrix + source addresses "
              "(§2.4) ---\n");
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& server = net.add_machine("server");
  net::Machine& client = net.add_machine("client");
  net::Machine& intruder = net.add_machine("intruder");
  Rng rng(5);

  auto server_keys = std::make_shared<softprot::KeyStore>();
  auto client_keys = std::make_shared<softprot::KeyStore>();
  softprot::BootService boot(server, Port(0xB007), server_keys, 11);
  boot.start();
  boot.announce();

  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer service(server, Port(0x6E7),
                               core::make_scheme(core::SchemeKind::one_way_xor, rng),
                               1, geometry);
  service.set_filter(std::make_shared<softprot::SealingFilter>(server_keys, 2));
  service.start();

  Rng client_rng(13);
  (void)softprot::establish_keys(client, boot.put_port(), boot.public_key(),
                                 *client_keys, client_rng);
  std::printf("  key matrix bootstrapped via RSA handshake\n");

  rpc::Transport me(client, 3);
  me.set_filter(std::make_shared<softprot::SealingFilter>(client_keys, 4));
  servers::BlockClient my_blocks(me, service.put_port());

  std::optional<net::Message> captured;
  net::TapHandle tap = net.attach_tap([&](const net::TapRecord& rec) {
    if (rec.kind == net::FrameKind::data && rec.src == client.id() &&
        rec.message.header.opcode == servers::block_ops::kWrite.opcode) {
      captured = rec.message;
    }
  });

  const auto cap = my_blocks.allocate().value();
  (void)my_blocks.write(cap, Buffer{'v', '1'});

  // Attack 1: replay the captured (sealed) request from the intruder's
  // machine.  The unforgeable source address selects the wrong key.
  net::Message replay = *captured;
  net::Receiver reply_box = intruder.listen(Port(0x7777));
  replay.header.reply = Port(0x7777);
  (void)intruder.transmit(replay, server.id());
  const auto reply = reply_box.receive({}, 1000ms);
  const bool replay_worked =
      reply.has_value() && reply->message.header.status == ErrorCode::ok;
  verdict("replay captured request from another machine", !replay_worked);

  // Attack 2: use the sealed capability bits observed on the wire as if
  // they were a real capability.
  rpc::Transport it(intruder, 6);
  servers::BlockClient intruder_blocks(it, service.put_port());
  const core::Capability stolen =
      core::unpack(captured->header.capability);
  verdict("present wiretapped (sealed) capability bits",
          !intruder_blocks.read(stolen).ok());

  // Attack 3: impostor boot service squats on a port and hopes clients
  // hand it fresh keys (it lacks the real private key).
  auto impostor_keys = std::make_shared<softprot::KeyStore>();
  softprot::BootService impostor(intruder, Port(0xBAD), impostor_keys, 66);
  impostor.start();
  Rng victim_rng(17);
  softprot::KeyStore victim_keys;
  const auto hs = softprot::establish_keys(client, impostor.put_port(),
                                           boot.public_key(),  // real pubkey
                                           victim_keys, victim_rng);
  verdict("impostor boot service without the private key", !hs.ok());

  // Legitimate traffic still flows.
  std::printf("  (legitimate client still works: %s)\n",
              my_blocks.read(cap).ok() ? "yes" : "no");
}

}  // namespace

int main() {
  std::printf("== Fig. 1: clients, servers, intruders ==\n");
  fbox_world();
  softprot_world();
  std::printf("\nevery attack defended; the two mechanisms are\n"
              "interchangeable protection substrates, as §2.4 claims.\n");
  return 0;
}
