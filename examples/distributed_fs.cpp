// Distributed file system example (§3.2-3.4): the modular block / flat
// file / directory stack spread over five machines, with a path walk that
// transparently hops between two directory servers -- the scenario the
// paper uses to argue that "the distribution is completely transparent."
#include <cstdio>
#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"

using namespace amoeba;

int main() {
  std::printf("== Distributed file stack over five machines ==\n\n");

  net::Network net;
  net::Machine& disk_host = net.add_machine("disk-host");
  net::Machine& fs_host = net.add_machine("fs-host");
  net::Machine& names1 = net.add_machine("names-1");
  net::Machine& names2 = net.add_machine("names-2");
  net::Machine& user = net.add_machine("user");

  Rng rng(42);
  const auto scheme = core::make_scheme(core::SchemeKind::commutative, rng);

  // The stack: a block server owning the disk, a flat file server that is
  // a *client* of the block server, and two independent directory servers.
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 512;
  geometry.block_size = 1024;
  servers::BlockServer blocks(disk_host, Port(0xB10C), scheme, 1, geometry);
  blocks.start();
  servers::FlatFileServer files(fs_host, Port(0xF17E), scheme, 2,
                                blocks.put_port());
  files.start();
  servers::DirectoryServer dir_server_1(names1, Port(0xD1), scheme, 3);
  dir_server_1.start();
  servers::DirectoryServer dir_server_2(names2, Port(0xD2), scheme, 4);
  dir_server_2.start();

  rpc::Transport me(user, 5);
  servers::DirectoryClient dirs1(me, dir_server_1.put_port());
  servers::DirectoryClient dirs2(me, dir_server_2.put_port());
  servers::FlatFileClient my_files(me, files.put_port());

  // Build /home/projects/amoeba/README where "home" lives on directory
  // server 1 but "projects" and below live on directory server 2.
  const auto home = dirs1.create_dir().value();
  const auto projects = dirs2.create_dir().value();
  const auto amoeba_dir = dirs2.create_dir().value();
  (void)dirs1.enter(home, "projects", projects);
  (void)dirs2.enter(projects, "amoeba", amoeba_dir);

  const auto readme = my_files.create().value();
  const std::string content =
      "Amoeba: capabilities managed by user code, protected by sparseness.";
  (void)my_files.write(readme, 0,
                       Buffer(content.begin(), content.end()));
  (void)dirs2.enter(amoeba_dir, "README", readme);

  std::printf("directory server 1 on %s serves /home\n",
              names1.name().c_str());
  std::printf("directory server 2 on %s serves /home/projects/...\n\n",
              names2.name().c_str());

  // Path resolution crosses servers without the client doing anything
  // special: each hop is addressed via the returned capability's SERVER
  // field.
  const auto found =
      servers::resolve_path(me, home, "projects/amoeba/README");
  std::printf("resolve(\"projects/amoeba/README\") -> %s\n",
              core::to_string(found.value()).c_str());
  std::printf("  served lookups: dir1=%llu dir2=%llu\n",
              static_cast<unsigned long long>(dir_server_1.requests_served()),
              static_cast<unsigned long long>(dir_server_2.requests_served()));

  servers::FlatFileClient reader(me, found.value().server_port);
  const auto bytes = reader.read(found.value(), 0, content.size());
  std::printf("  file content: \"%.*s\"\n\n",
              static_cast<int>(bytes.value().size()),
              reinterpret_cast<const char*>(bytes.value().data()));

  // Show the modularity: the file's bytes live in block-server blocks.
  const auto info = servers::BlockClient(me, blocks.put_port()).info();
  std::printf("block server: %u/%u blocks free (file data consumed %u)\n",
              info.value().free_blocks, info.value().block_count,
              info.value().block_count - info.value().free_blocks);

  // Commutative scheme: the user deletes rights LOCALLY before publishing
  // the capability into the shared tree -- no server round-trip.
  const auto& commutative =
      static_cast<const core::CommutativeScheme&>(*scheme);
  core::Capability published = readme;
  for (const int bit : {core::rights::kWriteBit, core::rights::kDestroyBit,
                        core::rights::kAdminBit}) {
    published = commutative.restrict_local(published, bit).value();
  }
  (void)dirs2.enter(amoeba_dir, "README.public", published);
  std::printf(
      "\npublished read-only capability (restricted locally, zero RPCs):\n"
      "  %s\n",
      core::to_string(published).c_str());

  const auto check =
      servers::resolve_path(me, home, "projects/amoeba/README.public");
  servers::FlatFileClient pub_reader(me, check.value().server_port);
  std::printf("  read via public cap: %s\n",
              pub_reader.read(check.value(), 0, 6).ok() ? "ok" : "FAILED");
  std::printf("  write via public cap: %s\n",
              error_name(pub_reader.write(check.value(), 0, Buffer{'x'})
                             .error()));
  return 0;
}
