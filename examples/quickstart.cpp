// Quickstart: the paper's §2.3 walk-through as a runnable program.
//
//   "A client wishes to create a file using the file server, write some
//    data into the file, and then give another client permission to read
//    (but not modify) the file just written."
//
// Builds a three-machine network (storage, file server, workstation),
// performs exactly that scenario, demonstrates tamper rejection and
// instant revocation, and prints each step.
#include <cstdio>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/flat_file_server.hpp"

using namespace amoeba;

int main() {
  std::printf("== Amoeba sparse-capability quickstart ==\n\n");

  // A tiny distributed system: every box is a separate simulated machine
  // behind its own F-box.
  net::Network net;
  net::Machine& storage = net.add_machine("storage");
  net::Machine& fileserver = net.add_machine("fileserver");
  net::Machine& workstation = net.add_machine("workstation");

  Rng rng(2026);
  const auto scheme = core::make_scheme(core::SchemeKind::one_way_xor, rng);

  servers::BlockServer::Geometry geometry;
  geometry.block_count = 64;
  geometry.block_size = 512;
  servers::BlockServer blocks(storage, Port(0xB10C), scheme, 1, geometry);
  blocks.start();
  servers::FlatFileServer files(fileserver, Port(0xF17E), scheme, 2,
                                blocks.put_port());
  files.start();
  std::printf("file service listening on put-port %s\n",
              to_string(files.put_port()).c_str());

  // --- the client creates a file and writes into it ---
  rpc::Transport me(workstation, 3);
  servers::FlatFileClient my_files(me, files.put_port());

  const auto file = my_files.create();
  if (!file.ok()) {
    std::printf("create failed: %s\n", error_name(file.error()));
    return 1;
  }
  std::printf("created file, owner capability  %s\n",
              core::to_string(file.value()).c_str());

  const char* text = "sparse capabilities protect this file";
  const Buffer data(text, text + 37);
  (void)my_files.write(file.value(), 0, data);
  std::printf("wrote %zu bytes\n\n", data.size());

  // --- fabricate a read-only sub-capability for a friend ---
  const auto read_only = my_files.restrict(file.value(), core::rights::kRead);
  std::printf("read-only sub-capability        %s\n",
              core::to_string(read_only.value()).c_str());

  // The friend is just another process holding the 128-bit pattern.
  rpc::Transport friend_transport(net.add_machine("friend"), 4);
  servers::FlatFileClient friends_files(friend_transport, files.put_port());

  const auto friends_read = friends_files.read(read_only.value(), 0, 37);
  std::printf("friend reads: \"%.*s\"\n",
              static_cast<int>(friends_read.value().size()),
              reinterpret_cast<const char*>(friends_read.value().data()));
  const auto friends_write =
      friends_files.write(read_only.value(), 0, Buffer{'!'});
  std::printf("friend write attempt: %s\n", error_name(friends_write.error()));

  // --- tampering with the rights field is detected cryptographically ---
  core::Capability forged = read_only.value();
  forged.rights = Rights::all();
  const auto forged_write = friends_files.write(forged, 0, Buffer{'!'});
  std::printf("forged rights-field write: %s\n\n",
              error_name(forged_write.error()));

  // --- instant revocation: rotate the object's random number ---
  const auto fresh = my_files.revoke(file.value());
  std::printf("owner revoked all outstanding capabilities\n");
  const auto after_revoke = friends_files.read(read_only.value(), 0, 1);
  std::printf("friend read after revocation: %s\n",
              error_name(after_revoke.error()));
  const auto owner_read = my_files.read(fresh.value(), 0, 6);
  std::printf("owner reads with fresh capability: \"%.*s...\"\n",
              static_cast<int>(owner_read.value().size()),
              reinterpret_cast<const char*>(owner_read.value().data()));

  // --- pipelined client: many transactions in flight from one thread ---
  // rpc::call blocks (§2.1); rpc::call_async returns a TypedFuture
  // immediately, so one thread can keep a window of requests outstanding
  // and collect the decoded replies as the service's workers finish them.
  std::printf("\npipelining 8 one-word reads through one thread...\n");
  std::vector<rpc::TypedFuture<servers::file_ops::ReadOp>> in_flight;
  for (std::uint64_t word = 0; word < 8; ++word) {
    in_flight.push_back(rpc::call_async(me, files.put_port(),
                                        servers::file_ops::kRead,
                                        fresh.value(), {word * 4, 4}));
  }
  std::printf("issued %zu, in flight now: %zu\n", in_flight.size(),
              me.in_flight());
  for (auto& future : in_flight) {
    const auto reply = future.get();  // completes out of issue order too
    std::printf("  \"%.*s\"",
                static_cast<int>(reply.value().bytes.size()),
                reinterpret_cast<const char*>(reply.value().bytes.data()));
  }
  std::printf("\n");

  // --- batched client: N sub-requests in ONE frame, one round trip ---
  rpc::TypedBatch batch(me, files.put_port());
  std::vector<rpc::TypedBatch::Entry<servers::file_ops::ReadOp>> entries;
  for (std::uint64_t word = 0; word < 8; ++word) {
    entries.push_back(
        batch.add(servers::file_ops::kRead, fresh.value(), {word * 4, 4}));
  }
  const auto replies = batch.run();
  std::printf("batched the same 8 reads into one frame; statuses:");
  for (const auto& entry : entries) {
    const auto outcome = replies.value().get(entry);
    std::printf(" %s", error_name(outcome.ok() ? ErrorCode::ok
                                               : outcome.error()));
  }
  std::printf("\n\nall done.\n");
  return 0;
}
